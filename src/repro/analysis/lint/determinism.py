"""The ``determinism`` rule: no hidden entropy inside simulation code.

Every equivalence claim the repo makes — parallel == serial sweeps,
``pure`` == ``kernel`` == ``numba`` backends, zero-tolerance baseline
gates — holds only if simulation results are a pure function of their
config. This rule flags the constructs that silently break that inside
the simulation packages (``sim``, ``mc``, ``system``, ``attacks``,
``workloads``):

* process-global randomness: module-level ``random.*`` calls,
  unseeded ``random.Random()``, any ``random.SystemRandom`` — seeded
  per-run ``random.Random(seed_expr)`` instances are the sanctioned
  spelling (see :func:`repro.mitigations.registry._build_para`);
* wall-clock reads that could leak into results: ``time.time()`` /
  ``time.time_ns()``, ``datetime.now()`` / ``utcnow()`` / ``today()``
  (monotonic clocks like ``time.perf_counter`` are out of scope here —
  the ``telemetry-purity`` rule confines them to the sanctioned
  telemetry scopes repo-wide);
* iteration over sets (literals, comprehensions, ``set()`` /
  ``frozenset()`` calls, ``.union``-style results): set order depends
  on hash seeding, so results fed from a bare set walk are not
  reproducible across processes — wrap the iterable in ``sorted()``.

Dicts are deliberately not flagged: insertion order is a language
guarantee since Python 3.7, and the codebase leans on it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.lint.core import (
    FileContext,
    Finding,
    dotted_chain,
    import_aliases,
    normalize_chain,
)

NAME = "determinism"

DESCRIPTION = (
    "no unseeded RNG, wall-clock reads, or bare set iteration inside "
    "the simulation packages (sim/mc/system/attacks/workloads)"
)

#: Directories (path segments) the rule applies to.
DEFAULT_PACKAGES: Tuple[str, ...] = (
    "sim", "mc", "system", "attacks", "workloads",
)

#: Module-level functions of :mod:`random` that draw from (or mutate)
#: the process-global RNG.
_GLOBAL_RANDOM_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
})

_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

_SET_METHODS = frozenset({
    "difference", "intersection", "symmetric_difference", "union",
})


def _set_origin(node: ast.AST) -> Optional[str]:
    """How ``node`` is recognizably a set, or ``None``."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}()"
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return f"set.{func.attr}()"
    return None


def check(ctx: FileContext,
          packages: Tuple[str, ...] = DEFAULT_PACKAGES) -> Iterator[Finding]:
    if not any(part in packages for part in ctx.path_parts[:-1]):
        return
    modules, members = import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            chain = dotted_chain(node.func)
            if chain is None:
                continue
            chain = normalize_chain(chain, modules, members)
            if chain[0] == "random" and len(chain) == 2:
                fn = chain[1]
                if fn in _GLOBAL_RANDOM_FNS:
                    yield ctx.finding(NAME, node, (
                        f"random.{fn}() draws from the process-global "
                        "RNG; use a random.Random(seed) derived from "
                        "the run config"
                    ))
                elif fn == "Random" and not node.args and not node.keywords:
                    yield ctx.finding(NAME, node, (
                        "unseeded random.Random() is seeded from OS "
                        "entropy; pass a seed derived from the run "
                        "config"
                    ))
                elif fn == "SystemRandom":
                    yield ctx.finding(NAME, node, (
                        "random.SystemRandom cannot be seeded; "
                        "simulation code must use random.Random(seed)"
                    ))
            elif chain[0] == "time" and len(chain) == 2 and (
                    chain[1] in ("time", "time_ns")):
                yield ctx.finding(NAME, node, (
                    f"time.{chain[1]}() reads the wall clock; results "
                    "must depend only on the run config (use the "
                    "simulated clock, or wall_timer() from "
                    "repro.sweep.runner for telemetry-only wall time)"
                ))
            elif chain[-1] in _DATETIME_FNS and (
                    "datetime" in chain[:-1] or "date" in chain[:-1]):
                yield ctx.finding(NAME, node, (
                    f"{'.'.join(chain)}() reads the wall clock; "
                    "simulation code must not depend on the host date"
                ))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            origin = _set_origin(node.iter)
            if origin is not None:
                yield ctx.finding(NAME, node.iter, (
                    f"iterating {origin} has hash-seed-dependent "
                    "order; wrap it in sorted(...) before it feeds "
                    "results or hashes"
                ))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                origin = _set_origin(generator.iter)
                if origin is not None:
                    yield ctx.finding(NAME, generator.iter, (
                        f"comprehension over {origin} has "
                        "hash-seed-dependent order; wrap it in "
                        "sorted(...) before it feeds results or hashes"
                    ))
