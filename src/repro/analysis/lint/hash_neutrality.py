"""The ``hash-neutrality`` rule: every sweep axis decides its identity.

Sweep results are cached and baseline-gated by config hash. When a new
axis (field) lands on a ``*SweepSpec`` dataclass, there are exactly two
correct moves: feed it into the family's identity functions (``points``
builds the hashed config; ``config_hash`` / ``key`` / ``sweep_hash``
define identity directly), or declare its neutral value in the
module's ``_NEUTRAL_AXES`` table so pre-existing baselines and cache
entries survive. A field that does neither is a drift bomb — two specs
that differ only in that field would share a cache entry and a
baseline identity while simulating different things.

This rule parses every dataclass named ``*SweepSpec``, collects the
attribute names consumed inside the module's identity functions
(``points``, ``sweep_hash``, ``config_hash``, ``key``,
``__post_init__``) and the keys of the module-level ``_NEUTRAL_AXES``
literal, and flags any field covered by neither. ``description`` is
exempt by default: it is artifact metadata and never part of identity.

The check is static by design: it must fail before a corrupted cache
entry or baseline is ever *written*, which no runtime assertion placed
inside the sweep machinery can guarantee (see DESIGN.md).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.lint.core import FileContext, Finding

NAME = "hash-neutrality"

DESCRIPTION = (
    "every *SweepSpec dataclass field is consumed by an identity "
    "function (points/sweep_hash/config_hash/key) or listed in "
    "_NEUTRAL_AXES"
)

#: Functions whose attribute reads count as identity consumption.
IDENTITY_FUNCTIONS: Tuple[str, ...] = (
    "points", "sweep_hash", "config_hash", "key", "__post_init__",
)

#: Fields that are artifact metadata by convention, never identity.
DEFAULT_EXEMPT: Tuple[str, ...] = ("description",)


def _is_dataclass_decorated(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _neutral_axis_names(tree: ast.Module) -> Set[str]:
    """String keys of a module-level ``_NEUTRAL_AXES = {...}`` literal."""
    names: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (isinstance(target, ast.Name)
                    and target.id == "_NEUTRAL_AXES"
                    and isinstance(value, ast.Dict)):
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                            key.value, str):
                        names.add(key.value)
    return names


def _consumed_attributes(tree: ast.Module) -> Set[str]:
    """Attribute names read anywhere inside the identity functions.

    Point classes and spec classes live in the same module, so the
    walk deliberately credits a spec field when *any* identity
    function touches an attribute of that name (e.g. ``points()``
    forwarding ``self.seed`` into the config that ``config_hash``
    canonicalizes wholesale).
    """
    consumed: Set[str] = set()
    for node in ast.walk(tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in IDENTITY_FUNCTIONS):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Attribute):
                    consumed.add(sub.attr)
    return consumed


def check(ctx: FileContext,
          exempt: Tuple[str, ...] = DEFAULT_EXEMPT) -> Iterator[Finding]:
    spec_classes = [
        node for node in ast.walk(ctx.tree)
        if isinstance(node, ast.ClassDef)
        and node.name.endswith("SweepSpec")
        and _is_dataclass_decorated(node)
    ]
    if not spec_classes:
        return
    consumed = _consumed_attributes(ctx.tree)
    neutral = _neutral_axis_names(ctx.tree)
    for cls in spec_classes:
        for stmt in cls.body:
            if not (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                continue
            field_name = stmt.target.id
            if field_name.startswith("_") or field_name in exempt:
                continue
            if field_name in consumed or field_name in neutral:
                continue
            yield ctx.finding(NAME, stmt, (
                f"field '{field_name}' of {cls.name} is neither "
                f"consumed by an identity function "
                f"({'/'.join(IDENTITY_FUNCTIONS)}) nor listed in "
                "_NEUTRAL_AXES — decide its cache identity before a "
                "baseline is written against it"
            ))
