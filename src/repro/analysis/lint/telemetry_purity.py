"""The ``telemetry-purity`` rule: wall-clock reads stay in telemetry.

The ``determinism`` rule bans wall-clock reads *that could leak into
results* (``time.time``, ``datetime.now``) from simulation scope, but
historically exempted ``time.perf_counter`` wholesale because it fed
only the never-gated ``wall_clock_s`` telemetry. That blanket
exemption is a loophole: nothing stopped a perf-counter read from
creeping into a simulated quantity, and nothing confined host-time
measurement to the orchestration layer where it belongs.

This rule closes it. Every monotonic/CPU-clock read —
``time.perf_counter``, ``time.monotonic``, ``time.process_time``,
``time.thread_time``, and their ``_ns`` variants — is permitted only
in the sanctioned telemetry scopes:

* ``repro/obs/`` — the observability layer (provenance, wall-time
  fields of orchestration telemetry);
* ``repro/sweep/runner.py`` — home of :func:`~repro.sweep.runner.
  wall_timer`, the single sanctioned wall-clock read every runner and
  executor funnels through;
* ``benchmarks/`` — throughput measurement is its entire point.

Everything else (simulation scope *and* the other sweep/orchestration
modules) must call ``wall_timer()``; event timestamps in traces come
from the engine's simulated clocks, never from the host. Unlike the
simulation-scoped rules, this one applies to every linted file — a
wall-clock read outside the allowlist is a finding wherever it sits.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.lint.core import (
    FileContext,
    Finding,
    dotted_chain,
    import_aliases,
    normalize_chain,
)

NAME = "telemetry-purity"

DESCRIPTION = (
    "wall-clock reads (time.perf_counter & co.) only in obs/, "
    "sweep/runner.py, and benchmarks/; everything else uses "
    "wall_timer(), and trace timestamps carry sim time"
)

#: Wall-clock / CPU-clock functions of :mod:`time` confined to the
#: allowlisted telemetry scopes.
_CLOCK_FNS = frozenset({
    "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns",
    "process_time", "process_time_ns",
    "thread_time", "thread_time_ns",
})

#: Scopes where wall-clock reads are sanctioned. Bare tokens match any
#: directory segment of the file's relative path; entries containing a
#: slash match as a relative-path suffix.
DEFAULT_ALLOWED: Tuple[str, ...] = (
    "obs",
    "benchmarks",
    "sweep/runner.py",
)


def _is_allowed(ctx: FileContext, allowed: Tuple[str, ...]) -> bool:
    rel = "/".join(ctx.path_parts)
    for entry in allowed:
        if "/" in entry:
            if rel.endswith(entry):
                return True
        elif entry in ctx.path_parts[:-1]:
            return True
    return False


def check(ctx: FileContext,
          allowed: Tuple[str, ...] = DEFAULT_ALLOWED) -> Iterator[Finding]:
    if _is_allowed(ctx, allowed):
        return
    modules, members = import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = dotted_chain(node.func)
        if chain is None:
            continue
        chain = normalize_chain(chain, modules, members)
        if chain[0] == "time" and len(chain) == 2 and chain[1] in _CLOCK_FNS:
            yield ctx.finding(NAME, node, (
                f"time.{chain[1]}() reads the host clock outside the "
                "telemetry scopes (obs/, sweep/runner.py, benchmarks/); "
                "use repro.sweep.runner.wall_timer() for orchestration "
                "telemetry — sim-time fields come from engine clocks"
            ))
