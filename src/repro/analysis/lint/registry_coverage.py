"""The ``registry-coverage`` rule: registries stay fully wired.

Every behavior in this repo is registered somewhere — mitigation
policies, attack kinds, schedulers, backends, analytic model kinds,
sweep families/presets, paper figures — and each registration carries
three promises:

1. a one-line **description** (CLI listings and the README are
   generated from registry metadata, so an undescribed kind is
   invisible in every listing);
2. **CLI reachability** (a kind nobody can invoke from ``repro`` is
   dead weight: it appears in no preset and no ``choices=``, so no
   test or baseline can exercise it end to end);
3. for presets, a **committed baseline** under
   ``benchmarks/baselines/`` (the zero-tolerance gates only protect
   presets that have one).

Unlike the other rules this one is *repo-scope*: it imports the live
registries and cross-references them, because the invariants span
modules (a preset in ``sweep/`` vs a baseline file on disk vs an
argparse ``choices=`` in ``cli.py``). The state collection
(:func:`collect_state`) is separated from the pure judgement
(:func:`coverage_findings`) so fixture tests can fabricate broken
states without touching the real registries.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.lint.core import Finding, rel_path

NAME = "registry-coverage"

DESCRIPTION = (
    "every registered kind has a description and a CLI path, and "
    "every sweep preset has a committed baseline"
)

#: Figure source families -> sweep-family registry names.
_FIGURE_FAMILY_MAP = {
    "sweep": "sweep",
    "attack": "attack",
    "model": "model",
    "system": "system",
}


def _parser_choices(parser: argparse.ArgumentParser) -> Set[str]:
    """Every ``choices=`` string and subcommand name under a parser."""
    out: Set[str] = set()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                out.add(str(name))
                out |= _parser_choices(sub)
        elif action.choices is not None:
            out.update(str(choice) for choice in action.choices)
    return out


def _preset_kind_refs(families: Dict[str, object]) -> Set[str]:
    """Kind names any registered preset exercises through its points.

    A kind with no ``choices=`` entry is still CLI-reachable when a
    preset grid includes it (``repro model sweep safe-trh`` runs the
    ``safe-trh`` model kind even though no flag names it).
    """
    refs: Set[str] = set()
    for family in families.values():
        for spec in family.presets.values():
            for point in spec.points():
                kind = getattr(point, "kind", None)
                if isinstance(kind, str):
                    refs.add(kind)
                for nested_name in ("policy", "attack", "model", "spec"):
                    nested = getattr(point, nested_name, None)
                    nested_kind = getattr(nested, "kind", None)
                    if isinstance(nested_kind, str):
                        refs.add(nested_kind)
    return refs


def _module_rel_path(module: object, root: Path) -> str:
    return rel_path(Path(getattr(module, "__file__", "?")), root)


def _anchor(source_path: Path, name: str) -> int:
    """Best-effort line of ``name`` as a quoted literal in a source
    file (registries register kinds by string name), else line 1."""
    try:
        source = source_path.read_text(encoding="utf-8")
    except OSError:
        return 1
    for quoted in (f'"{name}"', f"'{name}'"):
        for lineno, line in enumerate(source.splitlines(), start=1):
            if quoted in line:
                return lineno
    return 1


def collect_state(root: Path) -> Dict[str, object]:
    """Snapshot the live registries into a plain-data state dict."""
    from repro import cli
    from repro.attacks import registry as attack_module
    from repro.mc import sched as sched_module
    from repro.mitigations import registry as mitigation_module
    from repro.report import figures as figures_module
    from repro.sim import backend as backend_module
    from repro.sweep import family as family_module
    from repro.sweep import model_spec as model_module

    registries = {
        "mitigation": {
            "source": _module_rel_path(mitigation_module, root),
            "kinds": {
                kind: str(info.get("description", ""))
                for kind, info in
                mitigation_module.policy_descriptions().items()
            },
        },
        "attack": {
            "source": _module_rel_path(attack_module, root),
            "kinds": {
                kind: str(info.get("description", ""))
                for kind, info in
                attack_module.attack_descriptions().items()
            },
        },
        "sched": {
            "source": _module_rel_path(sched_module, root),
            "kinds": {
                kind: str(info.get("description", ""))
                for kind, info in
                sched_module.sched_descriptions().items()
            },
        },
        "backend": {
            "source": _module_rel_path(backend_module, root),
            "kinds": {
                kind: str(info.get("description", ""))
                for kind, info in
                backend_module.backend_descriptions().items()
            },
        },
        "model": {
            "source": _module_rel_path(model_module, root),
            "kinds": {
                kind: str(info.get("description", ""))
                for kind, info in
                model_module.model_descriptions().items()
            },
        },
    }

    families = {}
    family_source = _module_rel_path(family_module, root)
    for name, family in family_module.FAMILIES.items():
        families[name] = {
            "source": family_source,
            "description": family.description,
            "presets": {
                preset: {
                    "baseline": rel_path(
                        family.default_baseline_path(preset, root), root),
                    "exists": family.default_baseline_path(
                        preset, root).is_file(),
                }
                for preset in family.presets
            },
        }

    figures = {}
    figure_source = _module_rel_path(figures_module, root)
    for name, spec in figures_module.FIGURES.items():
        figures[name] = {
            "source": figure_source,
            "title": spec.title,
            "section": spec.section,
            "sources": list(spec.source_keys()),
        }

    return {
        "registries": registries,
        "families": families,
        "figures": figures,
        "cli_choices": _parser_choices(cli.build_parser()),
        "preset_kind_refs": _preset_kind_refs(family_module.FAMILIES),
        "list_titles": set(cli._LIST_TITLES),
    }


def coverage_findings(state: Dict[str, object],
                      root: Optional[Path] = None) -> Iterator[Finding]:
    """Pure judgement over a :func:`collect_state`-shaped dict."""
    root = root or Path(".")

    def anchored(source: str, name: str) -> int:
        return _anchor(root / source, name)

    cli_choices: Set[str] = set(state.get("cli_choices", ()))
    kind_refs: Set[str] = set(state.get("preset_kind_refs", ()))
    list_titles: Set[str] = set(state.get("list_titles", ()))

    for label, registry in sorted(state.get("registries", {}).items()):
        source = registry["source"]
        for kind, description in sorted(registry["kinds"].items()):
            if not str(description).strip():
                yield Finding(NAME, source, anchored(source, kind), 1, (
                    f"registered {label} kind '{kind}' has no "
                    "description; CLI listings are generated from "
                    "registry metadata"
                ))
            if kind not in cli_choices and kind not in kind_refs:
                yield Finding(NAME, source, anchored(source, kind), 1, (
                    f"registered {label} kind '{kind}' is not "
                    "CLI-reachable: it appears in no argparse choices "
                    "and no registered preset exercises it"
                ))

    for name, family in sorted(state.get("families", {}).items()):
        source = family["source"]
        if not str(family.get("description", "")).strip():
            yield Finding(NAME, source, anchored(source, name), 1, (
                f"sweep family '{name}' has no description"
            ))
        if name not in list_titles:
            yield Finding(NAME, source, anchored(source, name), 1, (
                f"sweep family '{name}' has no CLI listing title "
                "(cli._LIST_TITLES); its list-presets command cannot "
                "render"
            ))
        for preset, info in sorted(family["presets"].items()):
            if not info["exists"]:
                yield Finding(NAME, source, anchored(source, preset), 1, (
                    f"preset '{preset}' of family '{name}' has no "
                    f"committed baseline at {info['baseline']}; the "
                    "zero-tolerance gate cannot protect it"
                ))

    families: Dict[str, object] = state.get("families", {})
    for name, figure in sorted(state.get("figures", {}).items()):
        source = figure["source"]
        if not str(figure.get("title", "")).strip() or not str(
                figure.get("section", "")).strip():
            yield Finding(NAME, source, anchored(source, name), 1, (
                f"figure '{name}' is missing its title or paper "
                "section; 'repro report list' renders both"
            ))
        for source_key in figure.get("sources", ()):
            family_name, _, preset = str(source_key).partition(":")
            mapped = _FIGURE_FAMILY_MAP.get(family_name)
            presets = (families.get(mapped, {}).get("presets", {})
                       if mapped else {})
            if preset not in presets:
                yield Finding(NAME, source, anchored(source, name), 1, (
                    f"figure '{name}' references source "
                    f"'{source_key}' but no such preset is "
                    "registered"
                ))


def check(root: Path) -> List[Finding]:
    """Repo-scope entry point: collect live state, judge it."""
    return list(coverage_findings(collect_state(root), root))
