"""Analytical models from the paper: feinting bound (Table 2), Ratchet
bound (Appendix A), performance-attack throughput (Section 7), and
storage/energy overheads (Section 6.5)."""

from repro.analysis.feinting_model import (
    feinting_bound,
    feinting_bound_exact,
    feinting_table,
)
from repro.analysis.ratchet_model import (
    RatchetModel,
    ratchet_safe_trh,
    ratchet_sweep,
)
from repro.analysis.throughput import (
    alert_window_throughput,
    benign_slowdown_model,
    continuous_alert_slowdown,
    single_bank_attack_throughput,
)
from repro.analysis.energy import (
    moat_sram_bytes,
    activation_energy_overhead,
)

__all__ = [
    "feinting_bound",
    "feinting_bound_exact",
    "feinting_table",
    "RatchetModel",
    "ratchet_safe_trh",
    "ratchet_sweep",
    "alert_window_throughput",
    "benign_slowdown_model",
    "continuous_alert_slowdown",
    "single_bank_attack_throughput",
    "moat_sram_bytes",
    "activation_energy_overhead",
]
