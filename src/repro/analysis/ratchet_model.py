"""Analytical model of the Ratchet attack (paper Appendix A).

The Ratchet attack exploits the activations JEDEC permits between
consecutive ALERTs: 3 activations fit in the 180 ns pre-RFM window and
``L`` (the ABO level) are mandated after the RFMs, so ``M = 3 + L``
activations separate ALERT assertions spaced ``tA2A = 180 + (350 +
tRC) * L`` ns apart.

The attack primes ``N`` rows to ATH (time ``F(N) = N * ATH * tRC``,
Eq. 1), then forces a chain of ALERTs; the ``M`` inter-ALERT
activations are spread over the un-mitigated rows, ratcheting them
above ATH. The ALERT phase takes ``G(N) = (N / L) * tA2A`` (Eq. 2) and
the whole attack must fit in a refresh window minus refresh time
(28.64 ms). The maximum count reached on the final row is

    T_RH_safe = ATH + log_{M/3}(N_c) + M          (Eq. 4)

where ``N_c`` is the largest pool that fits in the window. The final
``M`` term is the attacker's last inter-ALERT burst on the surviving
row.

This model reproduces every Safe-TRH cell of Table 7 and the curves of
Figures 10 and 15 (MOAT with ATH=64 at level 1 tolerates T_RH = 99).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.dram.timing import DramTiming, DDR5_PRAC_TIMING

#: Usable attack time per refresh window: tREFW minus the time spent
#: executing the 8192 REF commands (32 ms - 8192 * 410 ns = 28.64 ms).
def usable_window_ns(timing: DramTiming = DDR5_PRAC_TIMING) -> float:
    return timing.t_refw - timing.refs_per_refw * timing.t_rfc


@dataclass(frozen=True)
class RatchetModel:
    """Appendix A equations 1-4 for a given ABO level and timing."""

    level: int = 1
    timing: DramTiming = field(default_factory=lambda: DDR5_PRAC_TIMING)

    def __post_init__(self) -> None:
        if self.level not in (1, 2, 4):
            raise ValueError("level must be 1, 2, or 4")

    @property
    def inter_alert_acts(self) -> int:
        """M = 3 + L activations between consecutive ALERTs."""
        return 3 + self.level

    @property
    def inter_alert_time(self) -> float:
        """tA2A = 180 + (350 + tRC) * L nanoseconds."""
        return self.timing.inter_alert_time(self.level)

    def priming_time(self, pool_size: int, ath: int) -> float:
        """Eq. 1: F(N) = N * ATH * tRC."""
        return pool_size * ath * self.timing.t_rc

    def alert_phase_time(self, pool_size: int) -> float:
        """Eq. 2: G(N) = (N / L) * tA2A."""
        return (pool_size / self.level) * self.inter_alert_time

    def total_time(self, pool_size: int, ath: int) -> float:
        """Eq. 3: H(N) = F(N) + G(N)."""
        return self.priming_time(pool_size, ath) + self.alert_phase_time(pool_size)

    def max_pool(self, ath: int) -> int:
        """N_c: the largest pool whose attack fits one refresh window."""
        window = usable_window_ns(self.timing)
        per_row = ath * self.timing.t_rc + self.inter_alert_time / self.level
        return max(1, int(window // per_row))

    def safe_trh(self, ath: int) -> int:
        """Eq. 4: ATH + log_{M/3}(N_c) + M (rounded up to be safe)."""
        if ath <= 0:
            raise ValueError("ath must be positive")
        pool = self.max_pool(ath)
        base = self.inter_alert_acts / 3.0
        growth = math.log(pool, base) if pool > 1 else 0.0
        return int(round(ath + growth + self.inter_alert_acts))


def ratchet_safe_trh(
    ath: int, level: int = 1, timing: DramTiming = DDR5_PRAC_TIMING
) -> int:
    """Convenience wrapper: tolerated T_RH of MOAT for a given ATH."""
    return RatchetModel(level=level, timing=timing).safe_trh(ath)


def ratchet_sweep(
    ath_values: List[int] | None = None,
    levels: List[int] | None = None,
    timing: DramTiming = DDR5_PRAC_TIMING,
) -> Dict[int, Dict[int, int]]:
    """Figures 10/15 data: {level: {ath: safe T_RH}}."""
    ath_values = ath_values or list(range(8, 129, 8))
    levels = levels or [1, 2, 4]
    return {
        level: {ath: ratchet_safe_trh(ath, level, timing) for ath in ath_values}
        for level in levels
    }


#: Safe-TRH values published in Table 7, keyed by (ath, level).
PAPER_TABLE7_SAFE_TRH = {
    (32, 1): 69,
    (32, 2): 56,
    (32, 4): 50,
    (64, 1): 99,
    (64, 2): 87,
    (64, 4): 82,
    (128, 1): 161,
    (128, 2): 150,
    (128, 4): 145,
}
