"""Feinting attack bound for transparent per-row-counter schemes.

Paper Table 2 (Section 2.5) bounds the Rowhammer threshold tolerated by
an idealized per-row tracker that mitigates the maximum-count row once
every ``k`` tREFI. The classic feinting argument (Marazzi et al.,
ProTRR): with ``n`` activations available per mitigation period and
``m`` periods remaining, the attacker spreads activations evenly over
``m`` candidate rows and sacrifices the mitigated row each period; the
survivor of ``m`` periods accumulates

    T_feint(m) = n/m + n/(m-1) + ... + n/1 = n * H(m)

activations. With DDR5 timings there are 67 activations per tREFI and
8192 REFs per tREFW, giving the paper's Table 2 values (638 at k=1 up
to 2669 at k=5).

Two evaluators are provided: the closed form (harmonic sum of real
numbers) and an exact integer water-filling that distributes whole
activations (what a real attacker would do); the two agree within a few
activations.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dram.timing import DramTiming, DDR5_PRAC_TIMING


def harmonic(m: int) -> float:
    """Exact harmonic number H(m) = sum_{i=1..m} 1/i."""
    if m < 0:
        raise ValueError("m must be non-negative")
    return sum(1.0 / i for i in range(1, m + 1))


def feinting_bound(
    trefi_per_mitigation: int,
    timing: DramTiming = DDR5_PRAC_TIMING,
) -> float:
    """Closed-form feinting bound: ``n * H(M)``.

    Args:
        trefi_per_mitigation: Mitigation rate ``k`` (1 aggressor row per
            ``k`` tREFI).
        timing: DRAM timing parameters.

    Returns:
        The maximum activation count an attacker can inflict on one row
        before it is mitigated (the tolerated T_RH of the scheme).
    """
    if trefi_per_mitigation <= 0:
        raise ValueError("trefi_per_mitigation must be positive")
    acts_per_period = timing.acts_per_trefi * trefi_per_mitigation
    periods = timing.refs_per_refw // trefi_per_mitigation
    return acts_per_period * harmonic(periods)


def feinting_bound_exact(
    trefi_per_mitigation: int,
    timing: DramTiming = DDR5_PRAC_TIMING,
) -> int:
    """Discrete-schedule feinting bound (whole activations per period).

    The survivor's fractional share with ``r`` rows remaining is
    ``n / r``; a concrete schedule allocates the integer difference of
    the running cumulative sum each period (the attacker rotates the
    remainder across candidate rows, so no period exceeds its ``n``
    activation budget). The result is ``floor`` of the fractional bound
    and differs from :func:`feinting_bound` by less than one activation.
    """
    if trefi_per_mitigation <= 0:
        raise ValueError("trefi_per_mitigation must be positive")
    acts_per_period = timing.acts_per_trefi * trefi_per_mitigation
    periods = timing.refs_per_refw // trefi_per_mitigation
    total = 0
    cumulative = 0.0
    for remaining in range(periods, 0, -1):
        cumulative += acts_per_period / remaining
        allocation = int(cumulative) - total
        total += allocation
    return total


def feinting_table(
    rates: List[int] | None = None,
    timing: DramTiming = DDR5_PRAC_TIMING,
) -> Dict[int, float]:
    """Reproduce Table 2: mitigation rate -> feinting T_RH bound."""
    rates = rates or [1, 2, 3, 4, 5]
    return {k: feinting_bound(k, timing) for k in rates}


#: Table 2 values published in the paper, for comparison in benchmarks.
PAPER_TABLE2 = {1: 638, 2: 1188, 3: 1702, 4: 2195, 5: 2669}
