"""Throughput math for ALERT-based performance attacks (paper §7, App D).

All computations use the paper's unit convention: one tRC (52 ns) is a
unit of time, so a bank performs at most one activation per unit and
the tALERT of 530 ns is "10 units plus one tRC" (11 units per
ALERT-plus-trigger).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.abo.protocol import AboConfig
from repro.dram.timing import DramTiming, DDR5_PRAC_TIMING


def alert_window_throughput(
    level: int = 1, timing: DramTiming = DDR5_PRAC_TIMING
) -> float:
    """Normalized throughput while the system is continuously ALERTing.

    Section 7.1: during an ALERT the system performs 3 ACTs before the
    RFM and ``level`` after, over tALERT plus one tRC per post-RFM ACT.
    For level 1 this is 4 ACTs per 11 units = 0.36x.
    """
    config = AboConfig(level=level, timing=timing)
    acts = config.min_acts_between_alerts
    time_units = (config.alert_duration + level * timing.t_rc) / timing.t_rc
    return acts / time_units


def continuous_alert_slowdown(
    level: int = 1, timing: DramTiming = DDR5_PRAC_TIMING
) -> float:
    """Worst-case slowdown under continuous ALERTs (Appendix D).

    The reciprocal of the ALERT-window throughput: 2.8x at level 1,
    3.8x at level 2, 4.9x at level 4.
    """
    return 1.0 / alert_window_throughput(level, timing)


def single_bank_attack_throughput(
    ath: int = 64,
    rows: int = 1,
    level: int = 1,
    timing: DramTiming = DDR5_PRAC_TIMING,
) -> float:
    """Normalized throughput of the Section 7.2 kernels.

    A pattern cycling over ``rows`` rows needs ``(ATH + 1)`` ACTs per
    row to trigger one ALERT per row; each ALERT adds the RFM stall
    (``level * tRFM``) of dead time, while the 180 ns window and the
    post-RFM activations overlap with useful work. The result is
    independent of ``rows`` (Figure 13: both the single-row and the
    five-row kernel lose ~10% at ATH=64, level 1).
    """
    if ath <= 0 or rows <= 0:
        raise ValueError("ath and rows must be positive")
    AboConfig(level=level, timing=timing)  # validates the level
    useful = (ath + 1) * rows * timing.t_rc
    stall = rows * level * timing.t_rfm
    return useful / (useful + stall)


def mixed_throughput(alert_time_fraction: float, level: int = 1) -> float:
    """Section 7.1 mixing model: throughput when a fraction of time is
    spent inside ALERTs (0.936x at 10% ALERT residency for level 1)."""
    if not 0.0 <= alert_time_fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    during = alert_window_throughput(level)
    return (1.0 - alert_time_fraction) + alert_time_fraction * during


@dataclass(frozen=True)
class BenignSlowdownModel:
    """Section 7.4 model for why benign workloads barely slow down."""

    benign_act_fraction: float = 0.996
    ath: int = 64

    @property
    def acts_per_alert(self) -> float:
        """Activations per ALERT: (ATH+1) / (1 - benign fraction)."""
        hostile = 1.0 - self.benign_act_fraction
        if hostile <= 0:
            return float("inf")
        return (self.ath + 1) / hostile


def benign_slowdown_model(
    benign_act_fraction: float = 0.996, ath: int = 64
) -> BenignSlowdownModel:
    """Convenience constructor for the Section 7.4 model."""
    return BenignSlowdownModel(benign_act_fraction, ath)
