"""ALERT-Back-Off (ABO) protocol model (JEDEC DDR5 extension, paper §2.6)."""

from repro.abo.protocol import AboConfig, AboProtocol, AlertEpisode

__all__ = ["AboConfig", "AboProtocol", "AlertEpisode"]
