"""ALERT-Back-Off (ABO) protocol state machine.

JEDEC's ABO extension (paper Section 2.6, Figure 2) lets a DRAM chip
assert ALERT when it needs time for Rowhammer mitigation:

* After ALERT is asserted, the memory controller may continue normal
  operation for 180 ns (enough for 3 activations at tRC = 52 ns).
* The MC must then stall the sub-channel and issue ``L`` RFM commands
  (350 ns each), where ``L`` is the *ABO mitigation level* programmed in
  mode register MR71 op[1:0] (legal values 1, 2, 4).
* A minimum of ``L`` activations must occur between consecutive ALERT
  assertions.

Consequently the minimum number of activations between consecutive
ALERTs is ``3 + L`` (Figure 8: 4 at level 1, 7 at level 4), and the
minimum time between assertions is ``tA2A = 180 + (350 + tRC) * L`` ns
(Appendix A). Both are exposed here and consumed by the Ratchet and TSA
analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.dram.timing import DramTiming, DDR5_PRAC_TIMING

LEGAL_ABO_LEVELS = (1, 2, 4)


@dataclass(frozen=True)
class AboConfig:
    """ABO configuration derived from MR71 op[1:0] and DRAM timing."""

    level: int = 1
    timing: DramTiming = field(default_factory=DramTiming)

    def __post_init__(self) -> None:
        if self.level not in LEGAL_ABO_LEVELS:
            raise ValueError(
                f"ABO level must be one of {LEGAL_ABO_LEVELS}, got {self.level}"
            )

    @property
    def rfms_per_alert(self) -> int:
        """RFM commands the MC must issue per ALERT (equals the level)."""
        return self.level

    @property
    def min_acts_between_alerts(self) -> int:
        """Minimum ACTs between consecutive ALERTs: 3 pre-RFM + L post.

        Figure 8: three activations fit in the 180 ns pre-RFM window and
        the specification mandates ``level`` activations after the RFMs
        before the next ALERT may be inserted.
        """
        return self.pre_rfm_acts + self.level

    @property
    def pre_rfm_acts(self) -> int:
        """ACTs that fit in the 180 ns window after ALERT assertion."""
        return int(self.timing.t_abo_act_window // self.timing.t_rc)

    @property
    def post_rfm_acts(self) -> int:
        """Mandatory ACTs after the RFMs before the next ALERT."""
        return self.level

    @property
    def alert_duration(self) -> float:
        """tALERT: 180 ns window + L RFMs (530 ns at level 1)."""
        return self.timing.alert_duration(self.level)

    @property
    def stall_duration(self) -> float:
        """Time the sub-channel is unavailable per ALERT (the RFMs)."""
        return self.level * self.timing.t_rfm

    @property
    def inter_alert_time(self) -> float:
        """tA2A: minimum time between consecutive ALERT assertions."""
        return self.timing.inter_alert_time(self.level)


@dataclass
class AlertEpisode:
    """Record of one ALERT episode (for traces and tests)."""

    assert_time: float
    end_time: float
    rfms: int
    requesting_banks: List[int] = field(default_factory=list)


class AboProtocol:
    """Stateful ABO model used by the sub-channel simulator.

    The protocol tracks when an ALERT may next be asserted (both the
    tA2A time constraint and the min-ACTs constraint) and records every
    episode. Mitigation policies request ALERTs; the simulator asks the
    protocol whether the request may be honoured *now* and, if not, how
    many more activations must elapse first — this delay window is
    exactly what the Ratchet attack exploits.
    """

    def __init__(self, config: AboConfig | None = None) -> None:
        self.config = config or AboConfig(level=1, timing=DDR5_PRAC_TIMING)
        self.episodes: List[AlertEpisode] = []
        # The min-ACTs constraint applies *between* consecutive ALERTs;
        # the first assertion of a run is unconstrained.
        self._acts_since_last_alert = self.config.min_acts_between_alerts
        self._last_alert_end = float("-inf")
        self._pending = False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def alerts_issued(self) -> int:
        return len(self.episodes)

    @property
    def alert_pending(self) -> bool:
        return self._pending

    def acts_until_alert_allowed(self) -> int:
        """Activations still required before the next ALERT may assert."""
        remaining = (
            self.config.min_acts_between_alerts - self._acts_since_last_alert
        )
        return max(0, remaining)

    def can_assert(self) -> bool:
        """Whether an ALERT may be asserted right now (ACT constraint)."""
        return self.acts_until_alert_allowed() == 0

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def note_activation(self) -> None:
        """Record one activation on the sub-channel."""
        self._acts_since_last_alert += 1

    def note_activations(self, count: int) -> None:
        """Record ``count`` activations at once (batched drivers).

        Only legal between ALERT interactions: the engine's fast loop
        flushes its local counter before any path that may consult
        :meth:`can_assert` or begin an episode.
        """
        self._acts_since_last_alert += count

    def request_alert(self) -> None:
        """A bank asks for reactive mitigation; latched until honoured."""
        self._pending = True

    def cancel_pending(self) -> None:
        """Withdraw the pending request (the triggering condition was
        cleared by a mitigation before the ALERT could assert)."""
        self._pending = False

    def try_begin_alert(self, now: float, banks: List[int]) -> AlertEpisode | None:
        """Begin an ALERT episode at ``now`` if one is pending and legal.

        Returns the episode (whose ``end_time`` reflects the 180 ns
        window plus the RFMs) or ``None`` if no ALERT can start.
        """
        if not self._pending or not self.can_assert():
            return None
        start = max(now, self._last_alert_end)
        end = start + self.config.alert_duration
        episode = AlertEpisode(
            assert_time=start,
            end_time=end,
            rfms=self.config.rfms_per_alert,
            requesting_banks=list(banks),
        )
        self.episodes.append(episode)
        self._pending = False
        self._acts_since_last_alert = 0
        self._last_alert_end = end
        return episode
