"""Simulation engines: security-accurate sub-channel simulator and the
workload-driven performance front-end."""

from repro.sim.engine import ActResult, SimConfig, SubchannelSim
from repro.sim.mapping import AddressMapping, CoffeeLakeMapping
from repro.sim.cache import SetAssociativeCache

__all__ = [
    "ActResult",
    "SimConfig",
    "SubchannelSim",
    "AddressMapping",
    "CoffeeLakeMapping",
    "SetAssociativeCache",
]
