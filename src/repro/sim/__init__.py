"""Simulation engines: the channel/sub-channel/bank hierarchy and the
workload-driven performance front-end."""

from repro.sim.channel import ChannelConfig, ChannelSim
from repro.sim.engine import ActResult, SimConfig, SubchannelSim
from repro.sim.mapping import AddressMapping, CoffeeLakeMapping
from repro.sim.cache import SetAssociativeCache

__all__ = [
    "ActResult",
    "ChannelConfig",
    "ChannelSim",
    "SimConfig",
    "SubchannelSim",
    "AddressMapping",
    "CoffeeLakeMapping",
    "SetAssociativeCache",
]
