"""Nanosecond-resolution sub-channel simulator.

The engine owns the clock, the banks, the refresh engines, the ABO
protocol, and one mitigation policy per bank. Attack patterns and
workload front-ends drive it through :meth:`SubchannelSim.activate` and
:meth:`SubchannelSim.idle`; the engine interleaves the scheduled REF
stream, proactive mitigations, and ALERT episodes in time order.

Timing rules implemented (paper Sections 2.2, 2.6):

* ACTs to the same bank are spaced by tRC (52 ns).
* ACTs to different banks are spaced by a command-issue gap that models
  the tFAW-limited peak rate (about 17 banks per tRC, Section 7.3).
* One REF per tREFI occupies the sub-channel for tRFC; the refresh
  engine may postpone up to 2 REFs, after which a mandatory batch runs
  (Appendix B's attack vector).
* Every ``trefi_per_mitigation`` REFs, each bank's policy may complete
  one proactive aggressor mitigation (default 5 for MOAT: 4 victim
  refreshes plus the counter-reset activation).
* ALERT: after assertion the MC continues for 180 ns (an ACT is allowed
  if it *completes* inside the window), then stalls for ``level`` RFMs
  of 350 ns each; every bank gets one mitigation opportunity per RFM.
  At least ``3 + level`` activations must separate consecutive ALERT
  assertions (Figure 8).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.abo.protocol import AboConfig, AboProtocol
from repro.dram.bank import Bank
from repro.dram.refresh import CounterResetPolicy, RefreshEngine
from repro.dram.timing import DramTiming, DDR5_PRAC_TIMING
from repro.mitigations.base import MitigationPolicy
from repro.mitigations.moat import MoatPolicy
from repro.mitigations.null import NullPolicy
from repro.obs.recorder import NULL_RECORDER
from repro.sim.backend import (
    F_CMD_FREE,
    F_E_NOW,
    F_LAST,
    F_NOW,
    I_ACTS,
    I_ALERT,
    I_FILL,
    I_NEXT,
    resolve_backend,
)

#: Signature of mitigation listeners: (bank_index, row, reactive, time).
MitigationListener = Callable[[int, int, bool, float], None]


@dataclass(frozen=True)
class SimConfig:
    """Static configuration of a sub-channel simulation."""

    timing: DramTiming = field(default_factory=lambda: DDR5_PRAC_TIMING)
    num_banks: int = 1
    rows_per_bank: int = 64 * 1024
    num_refresh_groups: int = 8192
    reset_policy: CounterResetPolicy = CounterResetPolicy.SAFE
    #: REF periods per completed proactive aggressor mitigation.
    #: 5 for MOAT (4 victims + counter reset), 4 for Panopticon.
    #: 0 disables proactive mitigation (ALERT-only, Appendix C "none").
    trefi_per_mitigation: int = 5
    abo_level: int = 1
    blast_radius: int = 2
    track_danger: bool = True
    #: Whether mitigating an aggressor resets its PRAC counter.
    reset_counter_on_mitigation: bool = True
    #: Channel command-issue gap between ACTs to different banks; the
    #: default models the tFAW-limited rate of ~17 ACTs per tRC.
    t_issue_gap: float = 52.0 / 17.0
    #: Maximum REFs the attacker may postpone (DDR5 allows 2).
    max_postponed_refs: int = 2
    #: Initial per-row counter values (row -> count), e.g. randomized
    #: Panopticon. ``None`` means all-zero.
    initial_counter: Optional[Callable[[int], int]] = None
    #: Interval (ns) between *external* RFM services, modelling ALERTs
    #: raised by banks outside the simulated set: an ALERT's RFM gives
    #: every bank of the sub-channel a reactive-mitigation opportunity,
    #: so unsimulated banks' ALERTs service the simulated banks too.
    #: The associated sub-channel stall is accounted separately by the
    #: performance front-end. ``None`` disables injection.
    external_service_interval_ns: Optional[float] = None
    #: Store per-row PRAC counters in preallocated flat arrays instead
    #: of sparse dicts (see :class:`~repro.dram.bank.Bank`). Enables
    #: the fast inner loop of :meth:`SubchannelSim.activate_many`;
    #: counter semantics are identical either way. Incompatible with
    #: ``initial_counter``.
    dense_counters: bool = False
    #: Kernel backend for the batched hot loops: ``"pure"``,
    #: ``"kernel"``, or ``"numba"`` (see :mod:`repro.sim.backend`).
    #: ``None`` defers to the ``REPRO_BACKEND`` environment variable,
    #: then ``"pure"``. Backends are equivalence-gated: every choice
    #: is bit-identical, so this knob is hashed out of sweep-point
    #: identities.
    backend: Optional[str] = None


@dataclass(frozen=True)
class ActResult:
    """Outcome of one activate call."""

    time: float
    count: int
    alert_pending: bool


@dataclass
class _Episode:
    """An ALERT episode awaiting its RFM processing."""

    assert_time: float
    window_end: float
    stall_end: float
    processed: bool = False


class SubchannelSim:
    """Event-ordered simulator of one DRAM sub-channel.

    Args:
        config: Static simulation parameters.
        policy_factory: Builds the per-bank mitigation policy.
    """

    def __init__(
        self,
        config: SimConfig,
        policy_factory: Callable[[], MitigationPolicy],
    ) -> None:
        self.config = config
        timing = config.timing
        self.timing = timing
        self._backend = resolve_backend(config.backend)
        if config.dense_counters:
            # One contiguous int64 block holds every bank's PRAC
            # counters (struct-of-arrays across banks): each bank
            # indexes its own memoryview slice exactly like a private
            # array, while kernel backends address the whole
            # sub-channel as one 2-D view.
            rows = config.rows_per_bank
            self._counter_block = array(
                "q", bytes(8 * config.num_banks * rows)
            )
            block_view = memoryview(self._counter_block)
            stores = [
                block_view[bank * rows:(bank + 1) * rows]
                for bank in range(config.num_banks)
            ]
        else:
            self._counter_block = None
            stores = [None] * config.num_banks
        self.banks: List[Bank] = [
            Bank(
                num_rows=config.rows_per_bank,
                blast_radius=config.blast_radius,
                track_danger=config.track_danger,
                initial_counter=config.initial_counter,
                dense_counters=config.dense_counters,
                counter_store=store,
            )
            for store in stores
        ]
        self.refresh: List[RefreshEngine] = [
            RefreshEngine(
                bank,
                num_groups=config.num_refresh_groups,
                reset_policy=config.reset_policy,
                max_postponed=config.max_postponed_refs,
            )
            for bank in self.banks
        ]
        self.policies: List[MitigationPolicy] = [
            policy_factory() for _ in range(config.num_banks)
        ]
        # Per-policy feature probes, hoisted out of the per-ACT/per-REF
        # hot paths (policies declare these as class or __init__-time
        # attributes, so sampling them once is safe).
        self._wants_ref_rows: List[bool] = [
            bool(getattr(p, "wants_refresh_notifications", False))
            for p in self.policies
        ]
        self._proactive_batch: List[int] = [
            int(getattr(p, "proactive_batch", 1)) for p in self.policies
        ]
        self._direct_refresh: List[bool] = [
            bool(getattr(p, "mitigation_refreshes_row_directly", False))
            for p in self.policies
        ]
        self._t_rc = timing.t_rc
        self._t_issue_gap = config.t_issue_gap
        # Kernel backend wiring. The compiled/interpeted kernels cover
        # the narrow hot case (dense counters, MOAT or the unprotected
        # baseline); every other policy keeps the pure batched loop,
        # bank by bank. ``_kernel_levels[bank]`` is the MOAT tracker
        # size (0 = null policy, -1 = unsupported -> pure loop).
        self._use_kernels = (
            self._backend.use_kernels
            and config.dense_counters
            and not config.track_danger
        )
        if self._use_kernels:
            import numpy as np

            levels: List[int] = []
            views = []
            for policy in self.policies:
                if type(policy) is MoatPolicy:
                    levels.append(policy.level)
                    views.append(policy.state_views())
                elif type(policy) is NullPolicy:
                    levels.append(0)
                    views.append(None)
                else:
                    levels.append(-1)
                    views.append(None)
            self._kernel_levels = levels
            self._policy_views = views
            self._dummy_slot = np.zeros(1, dtype=np.int64)
            self._prac_views = [
                np.frombuffer(bank._prac, dtype=np.int64)
                for bank in self.banks
            ]
            self._sh_rows = np.empty(config.blast_radius, dtype=np.int64)
            self._sh_counts = np.empty(config.blast_radius, dtype=np.int64)
            self._kf = np.zeros(8, dtype=np.float64)
            self._ki = np.zeros(8, dtype=np.int64)
        self.abo = AboProtocol(AboConfig(level=config.abo_level, timing=timing))
        self.now = 0.0
        self._channel_free = 0.0
        self._bank_free = [0.0] * config.num_banks
        self._next_ref = timing.t_refi
        interval = config.external_service_interval_ns
        self._next_external = interval if interval else float("inf")
        self._episode: Optional[_Episode] = None
        #: Attacker-controlled: request postponement of upcoming REFs.
        self.postpone_refs = False
        #: Listeners notified on every aggressor mitigation.
        self.mitigation_listeners: List[MitigationListener] = []
        #: Observability sink (:mod:`repro.obs`). The null default keeps
        #: every emission guard a single attribute read on cold code;
        #: the SoA hot loops above are never instrumented at all.
        self.recorder = NULL_RECORDER
        #: Global sub-channel index stamped into emitted events.
        self._rec_sub = 0
        # --- statistics -------------------------------------------------
        self.total_acts = 0
        self.alerts = 0
        self.refs = 0
        self.proactive_count = 0
        self.reactive_count = 0
        self.external_services = 0

    # ------------------------------------------------------------------
    # Public driving interface
    # ------------------------------------------------------------------

    def activate(self, row: int, bank: int = 0, not_before: float = 0.0) -> ActResult:
        """Issue one ACT; returns its issue time and observed count.

        The engine first retires every scheduled event (REFs, pending
        ALERT processing) that precedes the ACT, then applies timing
        constraints (tRC per bank, issue gap, ALERT window/stall).

        Args:
            row: Row to activate.
            bank: Target bank index.
            not_before: External floor on the issue time — the channel
                layer uses it to enforce cross-subchannel command-issue
                constraints without disturbing event processing.
        """
        start = max(self.now, self._channel_free, self._bank_free[bank], not_before)
        start = self._resolve_start(start)

        bank_obj = self.banks[bank]
        bank_obj.activate(row)
        effective = self.refresh[bank].note_activation(row)
        self.abo.note_activation()
        self.total_acts += 1

        policy = self.policies[bank]
        policy.on_activate(row, effective)
        if policy.alert_requested:
            policy.alert_requested = False
            self.abo.request_alert()

        complete = start + self._t_rc
        self.now = start
        self._channel_free = start + self._t_issue_gap
        self._bank_free[bank] = complete

        # ALERT asserts during the precharge of the triggering ACT.
        self._maybe_assert_alert(complete)
        if self.recorder.enabled:
            self.recorder.emit("act-burst", start, sub=self._rec_sub,
                               bank=bank, value=1.0)
        return ActResult(time=start, count=effective, alert_pending=self.abo.alert_pending)

    def activate_many(
        self, rows: List[int], bank: int = 0, not_before: float = 0.0
    ) -> Optional[float]:
        """Issue a batch of ACTs to one bank; returns the last issue time.

        Semantically identical to calling :meth:`activate` once per row
        (same event interleaving, same policy observations, same
        statistics) minus the per-ACT :class:`ActResult`. When the bank
        uses dense counters and danger tracking is off, runs spans
        between scheduled events (REF boundaries, external services,
        ALERT episodes) through a flat-array inner loop that skips the
        per-ACT method-call chain; any ACT that may interact with an
        event falls back to :meth:`activate`.
        """
        if not rows:
            return None
        last_start: Optional[float] = None
        bank_obj = self.banks[bank]
        if not bank_obj.dense_counters or bank_obj.track_danger:
            for row in rows:
                last_start = self.activate(row, bank, not_before).time
            return last_start
        if self._use_kernels and self._kernel_levels[bank] >= 0:
            return self._activate_many_kernel(rows, bank, not_before)

        t_rc = self._t_rc
        gap = self._t_issue_gap
        prac = bank_obj._prac
        shadow = self.refresh[bank].shadow
        policy = self.policies[bank]
        on_activate = policy.on_activate
        abo = self.abo
        i = 0
        n = len(rows)
        while i < n:
            if abo.alert_pending:
                # A latched request may assert on any ACT: stay on the
                # slow path until the episode machinery settles.
                last_start = self.activate(rows[i], bank, not_before).time
                i += 1
                continue
            # Snapshot event state; valid until the next slow-path call.
            now = self.now
            channel_free = self._channel_free
            bank_free = self._bank_free[bank]
            next_ref = self._next_ref
            next_external = self._next_external
            episode = self._episode
            window_end = (
                episode.window_end
                if episode is not None and not episode.processed
                else float("inf")
            )
            acts = 0
            alerting = False
            while i < n:
                start = now if now > channel_free else channel_free
                if bank_free > start:
                    start = bank_free
                if not_before > start:
                    start = not_before
                complete = start + t_rc
                if next_ref < complete or next_external <= start or complete > window_end:
                    break
                row = rows[i]
                count = prac[row] + 1
                prac[row] = count
                if shadow and row in shadow:
                    count = shadow[row] + 1
                    shadow[row] = count
                i += 1
                acts += 1
                now = start
                last_start = start
                channel_free = start + gap
                bank_free = complete
                on_activate(row, count)
                if policy.alert_requested:
                    alerting = True
                    break
            self.now = now
            self._channel_free = channel_free
            self._bank_free[bank] = bank_free
            if acts:
                self.total_acts += acts
                bank_obj.note_activations(acts)
                abo.note_activations(acts)
                if self.recorder.enabled:
                    self.recorder.emit("act-burst", now, sub=self._rec_sub,
                                       bank=bank, value=float(acts))
            if alerting:
                policy.alert_requested = False
                abo.request_alert()
                # The ALERT asserts during the precharge of the
                # triggering ACT, exactly as in activate().
                self._maybe_assert_alert(bank_free)
                continue
            if acts == 0 and i < n:
                # Next ACT overlaps a scheduled event: slow path for one.
                last_start = self.activate(rows[i], bank, not_before).time
                i += 1
        return last_start

    def _activate_many_kernel(
        self, rows: List[int], bank: int, not_before: float
    ) -> Optional[float]:
        """Kernel-backed body of :meth:`activate_many`.

        Same outer structure as the pure batched loop — snapshot event
        state, burst until the next scheduled event, flush statistics,
        handle ALERT requests — with the inner burst executed by the
        backend's ACT kernel over zero-copy views of the bank's dense
        counter slice, the SAFE-reset shadow registers, and the MOAT
        tracker register file. Bit-identical by construction: the
        kernel replays the exact per-ACT recurrences of the pure loop.
        """
        import numpy as np

        rows_arr = np.asarray(rows, dtype=np.int64)
        n = rows_arr.shape[0]
        kernel = self._backend.act_burst
        prac_row = self._prac_views[bank]
        refresh = self.refresh[bank]
        bank_obj = self.banks[bank]
        policy = self.policies[bank]
        level = self._kernel_levels[bank]
        if level > 0:
            m_rows, m_counts = self._policy_views[bank]
            eth, ath = policy.eth, policy.ath
        else:
            m_rows = m_counts = self._dummy_slot
            eth = ath = 0
        sh_rows, sh_counts = self._sh_rows, self._sh_counts
        fstate, istate = self._kf, self._ki
        abo = self.abo
        t_rc = self._t_rc
        gap = self._t_issue_gap
        last_start: Optional[float] = None
        i = 0
        while i < n:
            if abo.alert_pending:
                # A latched request may assert on any ACT: stay on the
                # slow path until the episode machinery settles.
                last_start = self.activate(int(rows_arr[i]), bank, not_before).time
                i += 1
                continue
            episode = self._episode
            window_end = (
                episode.window_end
                if episode is not None and not episode.processed
                else float("inf")
            )
            shadow = refresh.shadow
            n_sh = 0
            for s_row, s_count in shadow.items():
                sh_rows[n_sh] = s_row
                sh_counts[n_sh] = s_count
                n_sh += 1
            sh_rows[n_sh:] = -1
            fstate[F_NOW] = self.now
            fstate[F_CMD_FREE] = self._channel_free
            fstate[F_E_NOW] = self._bank_free[bank]
            istate[I_NEXT] = i
            istate[I_FILL] = policy._fill if level > 0 else 0
            istate[I_ALERT] = 0
            kernel(
                rows_arr, prac_row, sh_rows, sh_counts, m_rows, m_counts,
                fstate, istate, t_rc, gap, not_before,
                self._next_ref, self._next_external, window_end,
                eth, ath, level,
            )
            i = int(istate[I_NEXT])
            acts = int(istate[I_ACTS])
            self.now = float(fstate[F_NOW])
            self._channel_free = float(fstate[F_CMD_FREE])
            self._bank_free[bank] = float(fstate[F_E_NOW])
            if level > 0:
                policy._fill = int(istate[I_FILL])
            for k in range(n_sh):
                shadow[int(sh_rows[k])] = int(sh_counts[k])
            if acts:
                last_start = float(fstate[F_LAST])
                self.total_acts += acts
                bank_obj.note_activations(acts)
                abo.note_activations(acts)
                if self.recorder.enabled:
                    self.recorder.emit("act-burst", last_start,
                                       sub=self._rec_sub, bank=bank,
                                       value=float(acts))
            if istate[I_ALERT]:
                # The triggering ACT already committed inside the
                # kernel; request the ALERT exactly as the pure loop
                # does after on_activate sets alert_requested.
                policy.alerts_requested += 1
                abo.request_alert()
                self._maybe_assert_alert(self._bank_free[bank])
                continue
            if acts == 0 and i < n:
                # Next ACT overlaps a scheduled event: slow path for one.
                last_start = self.activate(int(rows_arr[i]), bank, not_before).time
                i += 1
        return last_start

    def occupy(
        self, duration: float, bank: int = 0, not_before: float = 0.0
    ) -> float:
        """Occupy the sub-channel and one bank for a non-ACT command.

        Models a column access (a row-buffer hit under an open-page
        memory controller): the command contends for the same issue
        slots and bank occupancy an ACT would — and is deferred across
        REFs and ALERT stalls by the same event machinery — but
        activates nothing, so counters, mitigation policies, and the
        ABO protocol never observe it. Returns the issue time; the bank
        stays busy until ``issue + duration``.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        start = max(self.now, self._channel_free, self._bank_free[bank], not_before)
        start = self._resolve_start(start, duration=duration)
        self.now = start
        self._channel_free = start + self._t_issue_gap
        self._bank_free[bank] = start + duration
        return start

    def would_defer(
        self, duration: Optional[float] = None, bank: int = 0,
        not_before: float = 0.0,
    ) -> bool:
        """Whether a prospective command would cross a scheduled event.

        True when a REF, unprocessed ALERT episode, or external
        service stands between the timing floor and the command's
        completion — every one of those precharges the banks, which
        is what the open-page memory controller needs to know before
        trusting a row buffer. Pure peek: no event is executed, no
        issue slot claimed (executing events here would let a
        *different* subsequent command slip past a REF that was only
        due relative to the probed one).
        """
        dur = self._t_rc if duration is None else duration
        floor = max(
            self.now, self._channel_free, self._bank_free[bank], not_before
        )
        if self._next_external <= floor:
            return True
        episode = self._episode
        if (
            episode is not None
            and not episode.processed
            and floor + dur > episode.window_end
        ):
            return True
        return self._next_ref < floor + dur

    def idle(self, duration: float) -> None:
        """Let wall-clock time pass with no commands issued."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.advance_to(self.now + duration)

    def advance_to(self, time: float) -> None:
        """Advance the clock to ``time``, retiring scheduled events."""
        if time < self.now:
            return
        # A pending ALERT whose ACT-count constraint is already met
        # asserts as soon as the attacker goes idle.
        self._maybe_assert_alert(self.now)
        self._drain_events(time)
        self.now = max(self.now, time)

    def flush(self) -> None:
        """Retire any unprocessed ALERT episode (end-of-run cleanup)."""
        if self._episode and not self._episode.processed:
            self._process_episode()
            self.now = max(self.now, self._episode.stall_end)

    # ------------------------------------------------------------------
    # Introspection helpers used by adaptive attacks and tests
    # ------------------------------------------------------------------

    @property
    def bank(self) -> Bank:
        """The first bank (single-bank attack convenience)."""
        return self.banks[0]

    @property
    def policy(self) -> MitigationPolicy:
        """The first bank's policy (single-bank attack convenience)."""
        return self.policies[0]

    def trefi_index(self) -> int:
        """Index of the current tREFI interval."""
        return int(self.now // self.timing.t_refi)

    def acts_possible(self, duration: float) -> int:
        """Max single-bank ACTs in ``duration`` (pacing helper)."""
        return int(duration // self.timing.t_rc)

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------

    def _resolve_start(self, start: float, duration: Optional[float] = None) -> float:
        """Retire events up to ``start`` and adjust it for stalls.

        ``duration`` is the occupancy of the command being placed
        (default: tRC, the ACT case); a command must complete before a
        due REF starts and inside any open ALERT window.
        """
        dur = self._t_rc if duration is None else duration
        while True:
            if self._next_external <= start:
                self._do_external_service()
                continue
            episode = self._episode
            episode_due = (
                episode is not None
                and not episode.processed
                and start + dur > episode.window_end
            )
            # A command must complete before a due REF starts (the bank
            # is precharged for refresh), so an overlap defers it.
            ref_due = self._next_ref < start + dur
            if episode_due and ref_due:
                # Process whichever comes first in time.
                if self._next_ref <= episode.window_end:
                    start = max(start, self._do_ref())
                else:
                    start = max(start, self._finish_episode())
                continue
            if episode_due:
                start = max(start, self._finish_episode())
                continue
            if ref_due:
                start = max(start, self._do_ref())
                continue
            return start

    def _drain_events(self, until: float) -> None:
        while True:
            if self._next_external <= until:
                self._do_external_service()
                continue
            episode = self._episode
            if (
                episode is not None
                and not episode.processed
                and episode.window_end <= until
            ):
                if self._next_ref <= episode.window_end:
                    self._do_ref()
                else:
                    self._finish_episode()
                continue
            if self._next_ref <= until:
                self._do_ref()
                continue
            return

    def _do_external_service(self) -> None:
        """One RFM opportunity from an unsimulated bank's ALERT.

        Counts as one external service regardless of how many banks
        (or rows) take the opportunity: the stat tracks injected RFM
        events, not mitigated rows.
        """
        time = self._next_external
        self._next_external += self.config.external_service_interval_ns or 0.0
        self.external_services += 1
        for index, policy in enumerate(self.policies):
            for row in policy.select_reactive(1):
                self._apply_mitigation(index, row, reactive=True, time=time)

    def _do_ref(self) -> float:
        """Execute (or postpone) the REF due at ``self._next_ref``.

        Returns the earliest time a subsequent ACT may start.
        """
        ref_time = self._next_ref
        self._next_ref += self.timing.t_refi

        if self.postpone_refs:
            postponed = all(engine.postpone() for engine in self.refresh)
            if postponed:
                return ref_time
            # Mandatory catch-up: execute the postponed batch.
            batch = self.refresh[0].postponed + 1
            end = ref_time
            for _ in range(batch):
                end = self._execute_one_ref(end)
            return end

        return self._execute_one_ref(ref_time)

    def _execute_one_ref(self, start: float) -> float:
        """Run one REF for every bank starting at ``start``."""
        self.refs += 1
        for index, engine in enumerate(self.refresh):
            refreshed_group = engine.execute_ref()
            policy = self.policies[index]
            if self._wants_ref_rows[index]:
                policy.on_ref(engine.group_rows(refreshed_group))
            else:
                policy.on_ref([])
            if policy.alert_requested:
                policy.alert_requested = False
                self.abo.request_alert()

        rate = self.config.trefi_per_mitigation
        if rate > 0 and self.refs % rate == 0:
            for index in range(self.config.num_banks):
                self._proactive_mitigation(index, start)

        end = start + self.timing.t_rfc
        if self.recorder.enabled:
            self.recorder.emit("ref", start, self.timing.t_rfc,
                               sub=self._rec_sub)
        # An ALERT request raised during REF may assert right after it.
        self._maybe_assert_alert(end)
        return end

    def _proactive_mitigation(self, bank_index: int, time: float) -> None:
        policy = self.policies[bank_index]
        batch = self._proactive_batch[bank_index]
        for _ in range(batch):
            row = policy.select_proactive()
            if row is None:
                return
            self._apply_mitigation(bank_index, row, reactive=False, time=time)
            self.proactive_count += 1
            policy.proactive_mitigations += 1

    def _apply_mitigation(
        self, bank_index: int, row: int, reactive: bool, time: float
    ) -> None:
        reset = self.config.reset_counter_on_mitigation
        if self._direct_refresh[bank_index]:
            # Victim-counting designs select the victim itself: refresh
            # its data and reset its counter.
            bank = self.banks[bank_index]
            bank.refresh_row_data(row)
            if reset:
                bank.reset_prac(row)
            bank.mitigation_activations += 1
        else:
            self.banks[bank_index].mitigate_aggressor(row, reset_counter=reset)
        engine = self.refresh[bank_index]
        if row in engine.shadow:
            engine.shadow[row] = 0 if reset else engine.shadow[row]
            if reset:
                engine.shadow.pop(row, None)
        for listener in self.mitigation_listeners:
            listener(bank_index, row, reactive, time)

    # ------------------------------------------------------------------
    # ALERT machinery
    # ------------------------------------------------------------------

    def _maybe_assert_alert(self, time: float) -> None:
        if self._episode is not None and not self._episode.processed:
            return  # an episode is already in flight
        episode = self.abo.try_begin_alert(time, banks=[])
        if episode is None:
            return
        window_end = episode.assert_time + self.timing.t_abo_act_window
        stall_end = window_end + self.abo.config.level * self.timing.t_rfm
        self._episode = _Episode(
            assert_time=episode.assert_time,
            window_end=window_end,
            stall_end=stall_end,
        )
        self.alerts += 1
        # Every execution path funnels ALERT assertion through this
        # method, so this single emission site reconciles exactly with
        # the ``alerts`` counter by construction.
        if self.recorder.enabled:
            self.recorder.emit("alert", episode.assert_time,
                               stall_end - episode.assert_time,
                               sub=self._rec_sub,
                               value=float(self.abo.config.level))

    def _finish_episode(self) -> float:
        """Apply the in-flight episode's RFM mitigations; returns the
        time at which the sub-channel unstalls."""
        episode = self._episode
        assert episode is not None and not episode.processed
        self._process_episode()
        return episode.stall_end

    def _process_episode(self) -> None:
        episode = self._episode
        assert episode is not None
        episode.processed = True
        level = self.abo.config.level
        # Requests raised while this episode was in flight are absorbed
        # by its RFMs; the ALERT condition is re-sampled below.
        self.abo.cancel_pending()
        for index, policy in enumerate(self.policies):
            rows = policy.select_reactive(level)
            for row in rows:
                self._apply_mitigation(
                    index, row, reactive=True, time=episode.window_end
                )
                self.reactive_count += 1
                policy.reactive_mitigations += 1
            # A policy may immediately need another ALERT: a row still
            # above ATH that this episode could not service, or the
            # drain-all Panopticon variant with a still-full queue.
            if policy.alert_requested or policy.needs_alert():
                policy.alert_requested = False
                self.abo.request_alert()
        # The next ALERT may assert once the ACT-count constraint allows;
        # the attempt happens on subsequent activations.

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Summary statistics of the run so far."""
        return {
            "time_ns": self.now,
            "total_acts": self.total_acts,
            "refs": self.refs,
            "alerts": self.alerts,
            "proactive_mitigations": self.proactive_count,
            "reactive_mitigations": self.reactive_count,
            "max_danger": max(bank.max_danger for bank in self.banks),
        }
