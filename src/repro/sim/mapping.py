"""Physical-address-to-DRAM mapping (CoffeeLake-style XOR functions).

The paper's baseline (Table 3) uses the Intel CoffeeLake mapping with a
closed-page policy. The practically relevant property for Rowhammer
studies is that bank-index bits are XOR hashes of address bits, so
same-bank same-row conflicts are controllable by an attacker who knows
the function. We implement a generic XOR-mask mapping plus the
CoffeeLake-like preset used by the workload front-end.

Addresses are byte addresses; the decoded tuple is
``(subchannel, bank, row, column)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


def _xor_bits(addr: int, bits: Sequence[int]) -> int:
    """XOR of the given bit positions of ``addr`` (returns 0 or 1)."""
    value = 0
    for bit in bits:
        value ^= (addr >> bit) & 1
    return value


@dataclass(frozen=True)
class DramAddress:
    """Decoded DRAM coordinates of a physical address."""

    subchannel: int
    bank: int
    row: int
    column: int


class AddressMapping:
    """Generic XOR-function DRAM address mapping.

    Args:
        bank_functions: One list of address-bit positions per bank-index
            bit; bank bit *i* is the XOR of its positions.
        subchannel_bits: Bit positions XORed into the sub-channel index
            (single bit -> 2 sub-channels).
        row_shift: Bit position where the row index starts.
        row_bits: Number of row-index bits.
        column_mask_bits: Number of low-order bits forming the column
            (cache-line granularity and burst).
    """

    def __init__(
        self,
        bank_functions: List[List[int]],
        subchannel_bits: List[int],
        row_shift: int = 18,
        row_bits: int = 16,
        column_mask_bits: int = 13,
    ) -> None:
        self.bank_functions = [list(bits) for bits in bank_functions]
        self.subchannel_bits = list(subchannel_bits)
        self.row_shift = row_shift
        self.row_bits = row_bits
        self.column_mask_bits = column_mask_bits

    @property
    def num_banks(self) -> int:
        return 1 << len(self.bank_functions)

    @property
    def num_subchannels(self) -> int:
        """Sub-channels addressed by the mapping (the sub-channel index
        is one XOR hash, so 2 when any bits feed it, else 1)."""
        return 2 if self.subchannel_bits else 1

    def decode(self, addr: int) -> DramAddress:
        """Decode a byte address into DRAM coordinates."""
        if addr < 0:
            raise ValueError("address must be non-negative")
        bank = 0
        for i, bits in enumerate(self.bank_functions):
            bank |= _xor_bits(addr, bits) << i
        subchannel = _xor_bits(addr, self.subchannel_bits)
        row = (addr >> self.row_shift) & ((1 << self.row_bits) - 1)
        column = addr & ((1 << self.column_mask_bits) - 1)
        return DramAddress(subchannel=subchannel, bank=bank, row=row, column=column)

    def compose(self, subchannel: int, bank: int, row: int, column: int = 0) -> int:
        """Build *a* physical address decoding to the given coordinates.

        Used by attack code that wants to hammer a specific (bank, row).
        The returned address places the row directly and then fixes up
        the XOR bank/sub-channel hashes using low-order row-independent
        bits not covered by the row field.
        """
        addr = (row & ((1 << self.row_bits) - 1)) << self.row_shift
        addr |= column & ((1 << self.column_mask_bits) - 1)
        # Fix the bank hash one bit at a time using a dedicated toggle
        # bit per function: the lowest listed bit below the row field.
        for i, bits in enumerate(self.bank_functions):
            want = (bank >> i) & 1
            if _xor_bits(addr, bits) != want:
                toggle = self._toggle_bit(bits)
                addr ^= 1 << toggle
        want_sc = subchannel & 1
        if _xor_bits(addr, self.subchannel_bits) != want_sc:
            addr ^= 1 << self._toggle_bit(self.subchannel_bits)
        return addr

    def _toggle_bit(self, bits: Sequence[int]) -> int:
        """A bit position usable to flip this hash without touching the
        row field or other hashes."""
        candidates = [b for b in bits if b < self.row_shift]
        if not candidates:
            raise ValueError(
                f"hash {bits} has no bit below the row field; cannot compose"
            )
        return min(candidates)


class CoffeeLakeMapping(AddressMapping):
    """CoffeeLake-like mapping for the Table 3 system.

    32 banks per sub-channel (5 bank bits), 2 sub-channels, 8 KB rows.
    Bank hash functions pair a low bit (below the row field) with a row
    bit, which is what makes row-buffer attacks from contiguous memory
    possible — and what our workload front-end exercises.
    """

    def __init__(self) -> None:
        super().__init__(
            bank_functions=[
                [13, 18],
                [14, 19],
                [15, 20],
                [16, 21],
                [17, 22],
            ],
            subchannel_bits=[6, 12],
            row_shift=18,
            row_bits=16,
            column_mask_bits=13,
        )
