"""Set-associative last-level cache model (Table 3: 8 MB, 16-way, 64 B).

The LLC sits between the synthetic instruction front-end and the DRAM
model: only LLC misses become memory activations. The model is a plain
LRU set-associative cache — sufficient because the workload generator
is calibrated in terms of *post-LLC* activation rates (Table 4 reports
ACTs, not accesses), and examples use the cache to show the full
address-level path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List


class SetAssociativeCache:
    """LRU set-associative cache of byte addresses.

    Args:
        size_bytes: Total capacity (default 8 MB).
        ways: Associativity (default 16).
        line_bytes: Cache-line size (default 64).
    """

    def __init__(
        self,
        size_bytes: int = 8 * 1024 * 1024,
        ways: int = 16,
        line_bytes: int = 64,
    ) -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache parameters must be positive")
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError("size must be a multiple of ways * line_bytes")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _index_tag(self, addr: int) -> tuple:
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, addr: int) -> bool:
        """Access ``addr``; returns True on hit, False on miss.

        Misses fill the line, evicting the LRU way if the set is full.
        """
        index, tag = self._index_tag(addr)
        ways = self._sets[index]
        if tag in ways:
            ways.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.ways:
            ways.popitem(last=False)
        ways[tag] = True
        return False

    def flush_line(self, addr: int) -> bool:
        """Evict the line containing ``addr`` (clflush); True if present.

        Rowhammer attack code uses this to defeat caching and force
        every access to reach DRAM.
        """
        index, tag = self._index_tag(addr)
        return self._sets[index].pop(tag, None) is not None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
