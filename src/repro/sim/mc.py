"""Closed-loop memory-controller performance front-end.

The fourth evaluation mode of the toolkit: where :func:`repro.sim.perf.
run_workload` measures the open-loop ALERT *stall fraction* of a fixed
activation schedule, :func:`run_mc` drives a timed request stream
through the :class:`~repro.mc.controller.MemoryController` and reports
what a system actually experiences under ABO recovery — read-latency
percentiles, achieved bandwidth, and queue occupancy. The two agree by
construction where they overlap: an open-loop schedule converted to a
request stream and replayed at infinite queue depth issues the same
ACT sequence, raises the same ALERTs, and accumulates the same stall
time (pinned by ``TestPerfCrossCheck`` in
``tests/mc/test_run_mc.py``); the closed-loop mode then *adds* the
queueing axis the analytic substitution argument cannot express (see
DESIGN.md).

Metrics (:class:`McResult`):

* Read latency mean/p50/p99/max (ns) — arrival at the MC front-end to
  data completion, so ALERT recovery shows up as queueing delay.
* Achieved bandwidth (GB/s at 64-byte lines) and requests per tREFI.
* Average queue occupancy (Little's-law exact: summed queue residency
  over elapsed time).
* ALERTs per tREFI per sub-channel and the ALERT stall fraction —
  directly comparable to :class:`~repro.sim.perf.PerfResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.dram.refresh import CounterResetPolicy
from repro.dram.timing import DramTiming, DDR5_PRAC_TIMING
from repro.mc.controller import McConfig, MemoryController, ServedBatch
from repro.mc.request import Request
from repro.mc.sched import (
    normalize_sched_params,
    sched_display,
    validate_sched,
)
from repro.mitigations.registry import PolicySpec, RunParams
from repro.sim.channel import ChannelConfig, ChannelSim
from repro.sim.engine import SimConfig
from repro.workloads.requests import McWorkload, generate_requests

#: Bytes transferred per request (one cache line, Table 3 system).
LINE_BYTES = 64


@dataclass(frozen=True)
class McRunConfig:
    """Configuration of one closed-loop memory-controller run."""

    ath: int = 64
    eth: Optional[int] = None  # defaults to ath // 2
    abo_level: int = 1
    #: Which mitigation policy defends each bank.
    policy: PolicySpec = field(default_factory=PolicySpec)
    #: REF periods per completed proactive mitigation (``None`` = the
    #: policy's native cadence, as in :class:`~repro.sim.perf.RunConfig`).
    trefi_per_mitigation: Optional[int] = None
    #: Arrival process driving the controller.
    workload: McWorkload = field(default_factory=McWorkload)
    #: Per-bank queue capacity; ``None`` = unbounded.
    queue_depth: Optional[int] = 32
    #: Scheduling kind from the :mod:`repro.mc.sched` registry, plus
    #: its parameters as ``(name, value)`` pairs (empty = defaults).
    scheduler: str = "frfcfs"
    sched_params: Tuple[Tuple[str, Any], ...] = ()
    row_policy: str = "closed"
    #: Channel geometry. The controller simulates every bank it
    #: generates traffic for, so no cross-bank service modelling is
    #: needed (scaling factors all collapse to 1).
    subchannels: int = 1
    banks: int = 4
    rows_per_bank: int = 64 * 1024
    n_trefi: int = 1024
    seed: int = 0
    timing: DramTiming = field(default_factory=lambda: DDR5_PRAC_TIMING)
    #: Kernel backend for the serving hot loops (``"pure"``,
    #: ``"kernel"``, ``"numba"``; ``None`` defers to ``REPRO_BACKEND``
    #: then ``"pure"``). Equivalence-gated — results are bit-identical
    #: across backends, so this is hashed out of sweep identities.
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        # Fail fast at configuration time (not inside a sweep worker):
        # the sched registry is the single source of truth for kind
        # and parameter validation, shared with McConfig.
        object.__setattr__(
            self, "sched_params", normalize_sched_params(self.sched_params)
        )
        validate_sched(self.scheduler, self.sched_params)

    @property
    def eth_resolved(self) -> int:
        """ETH with the paper's ATH/2 default applied."""
        return self.ath // 2 if self.eth is None else self.eth

    @property
    def trefi_per_mitigation_resolved(self) -> int:
        """Proactive cadence with the policy's default applied."""
        if self.trefi_per_mitigation is None:
            return self.policy.default_trefi_per_mitigation
        return self.trefi_per_mitigation

    def mc_config(self) -> McConfig:
        """The controller-layer slice of this configuration."""
        return McConfig(
            queue_depth=self.queue_depth,
            scheduler=self.scheduler,
            sched_params=self.sched_params,
            row_policy=self.row_policy,
        )

    def sched_display(self) -> str:
        """``kind`` or ``kind(k=v,...)`` — the artifact spelling."""
        return sched_display(self.scheduler, self.sched_params)


@dataclass
class McResult:
    """Metrics of one closed-loop run."""

    workload: str
    policy: str
    ath: int
    eth: int
    abo_level: int
    scheduler: str
    row_policy: str
    queue_depth: Optional[int]
    subchannels: int
    banks: int
    n_trefi: int
    requests: int
    reads: int
    writes: int
    row_hits: int
    alerts: int
    total_acts: int
    elapsed_ns: float
    stall_ns: float
    read_mean_ns: float
    read_p50_ns: float
    read_p99_ns: float
    read_max_ns: float
    #: Mean time-in-queue across all requests (enqueue to issue).
    avg_queue_ns: float
    #: Little's-law average number of queued requests.
    avg_queue_occupancy: float

    @property
    def alerts_per_trefi(self) -> float:
        """ALERTs per tREFI per sub-channel (Figure 11b metric)."""
        return self.alerts / self.n_trefi / self.subchannels

    @property
    def stall_fraction(self) -> float:
        """Fraction of sub-channel time lost to ALERT RFMs — the
        closed-loop analogue of :attr:`PerfResult.slowdown` (every
        bank simulated, so no partial-simulation scaling)."""
        if not self.elapsed_ns:
            return 0.0
        return self.stall_ns / self.subchannels / self.elapsed_ns

    @property
    def achieved_gbps(self) -> float:
        """Completed request bandwidth in GB/s (64-byte lines)."""
        if not self.elapsed_ns:
            return 0.0
        return self.requests * LINE_BYTES / self.elapsed_ns

    @property
    def requests_per_trefi(self) -> float:
        """Completed requests per tREFI across the channel."""
        return self.requests / self.n_trefi

    @property
    def row_hit_rate(self) -> float:
        """Fraction of requests served from the open row buffer."""
        if not self.requests:
            return 0.0
        return self.row_hits / self.requests

    def as_metrics(self) -> Dict[str, float]:
        """Flat metric dict (sweep artifacts, ``summary.json``)."""
        return {
            "requests": float(self.requests),
            "reads": float(self.reads),
            "read_mean_ns": self.read_mean_ns,
            "read_p50_ns": self.read_p50_ns,
            "read_p99_ns": self.read_p99_ns,
            "read_max_ns": self.read_max_ns,
            "avg_queue_ns": self.avg_queue_ns,
            "avg_queue_occupancy": self.avg_queue_occupancy,
            "achieved_gbps": self.achieved_gbps,
            "requests_per_trefi": self.requests_per_trefi,
            "row_hit_rate": self.row_hit_rate,
            "alerts": float(self.alerts),
            "alerts_per_trefi": self.alerts_per_trefi,
            "stall_fraction": self.stall_fraction,
            "total_acts": float(self.total_acts),
        }


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted data (NaN when empty)."""
    if not sorted_values:
        return float("nan")
    k = max(0, min(len(sorted_values) - 1,
                   math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[k]


def build_mc_channel(
    config: McRunConfig,
    num_subchannels: Optional[int] = None,
    num_banks: Optional[int] = None,
    rows_per_bank: Optional[int] = None,
    mapping=None,
) -> ChannelSim:
    """Channel simulation for a closed-loop run (geometry overridable
    by trace replays, whose mapping dictates the shape)."""
    sim_config = SimConfig(
        timing=config.timing,
        num_banks=config.banks if num_banks is None else num_banks,
        rows_per_bank=(
            config.rows_per_bank if rows_per_bank is None else rows_per_bank
        ),
        num_refresh_groups=8192,
        reset_policy=CounterResetPolicy.SAFE,
        trefi_per_mitigation=config.trefi_per_mitigation_resolved,
        abo_level=config.abo_level,
        track_danger=False,
        dense_counters=True,
        backend=config.backend,
    )
    run_params = RunParams(
        ath=config.ath,
        eth=config.eth_resolved,
        abo_level=config.abo_level,
        seed=config.seed,
        timing=config.timing,
    )
    return ChannelSim(
        ChannelConfig(
            sim=sim_config,
            num_subchannels=(
                config.subchannels if num_subchannels is None
                else num_subchannels
            ),
            mapping=mapping,
        ),
        config.policy.make_factory(run_params),
    )


def run_mc(config: McRunConfig = McRunConfig(), recorder=None) -> McResult:
    """Synthesize the configured request stream and serve it.

    Args:
        config: Workload, policy, and controller parameters.
        recorder: Optional :class:`repro.obs.TraceRecorder`; when given,
            the engine and controller emit their event streams into it.
            Results are bit-identical either way.
    """
    requests = generate_requests(
        config.workload,
        num_subchannels=config.subchannels,
        banks_per_subchannel=config.banks,
        n_trefi=config.n_trefi,
        rows_per_bank=config.rows_per_bank,
        seed=config.seed,
        trefi_ns=config.timing.t_refi,
    )
    return run_mc_requests(
        requests, config, workload_name=config.workload.display_name(),
        recorder=recorder,
    )


def run_mc_requests(
    requests: List[Request],
    config: McRunConfig,
    workload_name: str = "requests",
    channel: Optional[ChannelSim] = None,
    recorder=None,
) -> McResult:
    """Serve an explicit request stream (tests, converters, replays).

    Args:
        requests: The stream; timestamps in nanoseconds.
        config: Policy and controller parameters; the geometry fields
            must cover the stream's coordinates unless ``channel``
            overrides them.
        workload_name: Label recorded in the result.
        channel: Pre-built channel (trace replays build one from the
            mapping's geometry).
        recorder: Optional :class:`repro.obs.TraceRecorder` attached to
            the channel's sub-channels and the controller.
    """
    if channel is None:
        channel = build_mc_channel(config)
    controller = MemoryController(channel, config.mc_config())
    if recorder is not None:
        channel.attach_recorder(recorder)
        controller.recorder = recorder
    served = controller.serve(requests)
    horizon = config.n_trefi * config.timing.t_refi
    return _summarize(served, channel, config, workload_name,
                      horizon=horizon, n_trefi=config.n_trefi)


def run_mc_trace(
    trace,
    config: McRunConfig = McRunConfig(),
    mapping=None,
    recorder=None,
) -> McResult:
    """Replay a v2 address trace as a closed-loop request stream.

    The channel's geometry comes from the mapping (every decoded bank
    of every sub-channel is simulated), like
    :func:`repro.sim.perf.run_trace`; the controller's queueing and
    scheduling knobs come from ``config``. At infinite queue depth
    with the FCFS scheduler the ACT sequence is bit-identical to the
    open-loop replay.
    """
    from repro.sim.mapping import CoffeeLakeMapping
    from repro.workloads.requests import requests_from_trace

    if mapping is None:
        mapping = CoffeeLakeMapping()
    channel = build_mc_channel(
        config,
        num_subchannels=mapping.num_subchannels,
        num_banks=mapping.num_banks,
        rows_per_bank=1 << mapping.row_bits,
    )
    requests = requests_from_trace(trace, mapping)
    controller = MemoryController(channel, config.mc_config())
    if recorder is not None:
        channel.attach_recorder(recorder)
        controller.recorder = recorder
    served = controller.serve(requests)

    trefi = config.timing.t_refi
    elapsed_floor = trace.duration_ns
    meta_trefi = trace.metadata.get("n_trefi")
    if isinstance(meta_trefi, (int, float)) and meta_trefi >= 1:
        n_trefi = int(meta_trefi)
    else:
        n_trefi = max(1, int(max(channel.now, elapsed_floor) // trefi))
    name = str(trace.metadata.get("workload", "trace"))
    return _summarize(
        served, channel, config, name,
        horizon=elapsed_floor, n_trefi=n_trefi,
        subchannels=mapping.num_subchannels, banks=mapping.num_banks,
    )


def _summarize(
    served: ServedBatch,
    channel: ChannelSim,
    config: McRunConfig,
    workload_name: str,
    horizon: float,
    n_trefi: int,
    subchannels: Optional[int] = None,
    banks: Optional[int] = None,
) -> McResult:
    # All aggregates come straight from the batch's flat arrays, in
    # the same accumulation order the per-completion objects produced
    # (see ServedBatch) — metrics are bit-identical either way.
    elapsed_ns = max(channel.now, horizon)
    read_latencies = served.read_latencies_sorted()
    reads = len(read_latencies)
    queue_ns_total = served.queue_ns_total()
    total = len(served)
    subchannels = config.subchannels if subchannels is None else subchannels
    stall_ns = channel.alerts * config.abo_level * config.timing.t_rfm
    return McResult(
        workload=workload_name,
        policy=config.policy.display_name(),
        ath=config.ath,
        eth=config.eth_resolved,
        abo_level=config.abo_level,
        scheduler=config.sched_display(),
        row_policy=config.row_policy,
        queue_depth=config.queue_depth,
        subchannels=subchannels,
        banks=config.banks if banks is None else banks,
        n_trefi=n_trefi,
        requests=total,
        reads=reads,
        writes=total - reads,
        row_hits=served.row_hit_count(),
        alerts=channel.alerts,
        total_acts=channel.total_acts,
        elapsed_ns=elapsed_ns,
        stall_ns=stall_ns,
        read_mean_ns=(
            sum(read_latencies) / reads if reads else float("nan")
        ),
        read_p50_ns=_percentile(read_latencies, 0.50),
        read_p99_ns=_percentile(read_latencies, 0.99),
        read_max_ns=read_latencies[-1] if reads else float("nan"),
        avg_queue_ns=(
            queue_ns_total / total if total else 0.0
        ),
        avg_queue_occupancy=(
            queue_ns_total / elapsed_ns if elapsed_ns else 0.0
        ),
    )
