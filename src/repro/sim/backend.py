"""Simulation kernel backends: ``pure``, ``kernel``, and ``numba``.

The engine and the memory controller each have one narrow hot loop —
the ACT burst between scheduled events (:meth:`SubchannelSim.
activate_many`) and the closed-page request-serving loop
(:meth:`MemoryController.run_streams`). This module registers
interchangeable implementations of those loops behind one API:

* ``pure`` (default) — the struct-of-arrays python loops. No
  third-party dependency; this is the implementation every committed
  baseline was produced with.
* ``numba`` — the same loops as flat-array kernel functions compiled
  with :func:`numba.njit`. Optional: when numba is not installed the
  backend **degrades gracefully to** ``pure`` (one warning, identical
  results).
* ``kernel`` — the numba kernel functions executed by the plain
  python interpreter. Internal/testing backend: it exercises the
  exact kernel code paths (array packing, state hand-off, stop
  codes) without requiring numba, which is how CI environments
  without a compiler still pin kernel==pure bit-identity.

Selection precedence: an explicit config field
(:attr:`SimConfig.backend` / :attr:`McRunConfig.backend`) wins, then
the ``REPRO_BACKEND`` environment variable, then ``pure``. The CLI's
``--backend`` flag sets the environment variable so process-pool
workers inherit the choice.

Backends are **equivalence-gated, not trusted**: every backend must
be bit-identical to ``pure`` across all seven policy kinds, both row
policies, and every committed sweep baseline (see DESIGN.md). That is
why ``backend`` is hashed out of every sweep point identity — it can
never change a result, only the wall-clock spent producing it.

Kernel support matrix: the compiled loops specialize the narrow hot
case (dense counters, closed page, single sub-channel, MOAT or the
unprotected baseline). Everything else — PARA's RNG, Graphene's
Misra-Gries table, open-page scheduling, multi-client crossbars —
stays on the general pure path, per-bank and per-run, silently and
bit-identically (the Quark approach: specialize the narrow kernel,
keep the general path for the long tail).
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

#: Environment variable consulted when no config field names a backend.
BACKEND_ENV = "REPRO_BACKEND"

#: Registered backend names, in documentation order.
BACKEND_NAMES: Tuple[str, ...] = ("pure", "kernel", "numba")

# ---------------------------------------------------------------------------
# Availability probing
# ---------------------------------------------------------------------------

_NUMBA_PROBE: Optional[bool] = None


def numba_available() -> bool:
    """Whether the optional numba JIT compiler is importable."""
    global _NUMBA_PROBE
    if _NUMBA_PROBE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_PROBE = True
        except ImportError:
            _NUMBA_PROBE = False
    return _NUMBA_PROBE


def numpy_available() -> bool:
    """Whether numpy is importable (required by kernel backends)."""
    try:
        import numpy  # noqa: F401

        return True
    except ImportError:  # pragma: no cover - numpy ships with the image
        return False


# ---------------------------------------------------------------------------
# Kernel functions
# ---------------------------------------------------------------------------
#
# Written in the numba-compatible subset (numpy arrays and scalars
# only; no dicts, no None, no object attributes) so one source serves
# both the ``kernel`` (interpreted) and ``numba`` (jitted) backends.
# All mutable state crosses the boundary through preallocated arrays;
# scalars that must round-trip live in small ``fstate``/``istate``
# vectors. The surrounding wrappers (engine / controller) own every
# event interaction: kernels run only *between* scheduled events and
# return a stop code the wrapper dispatches on.

#: ``fstate`` slots shared by both kernels.
F_NOW = 0          # controller clock (serve) / engine clock (burst)
F_CMD_FREE = 1     # controller: channel command front
F_ADMIT = 2        # controller: per-client admission floor
F_E_NOW = 3        # controller: engine clock mirror
F_E_CHFREE = 4     # controller: engine channel_free mirror
F_LAST = 5         # burst: last issue time / serve: alerting complete

#: ``istate`` slots.
I_NEXT = 0         # serve: next arrival index / burst: row cursor
I_SEQ = 1          # serve: admission sequence counter
I_QUEUED = 2       # serve: total queued requests
I_OUT = 3          # serve: completions produced
I_ACTS = 4         # ACTs performed since the last stats flush
I_FILL = 5         # burst: MOAT tracker fill (serve uses pfill[])
I_ALERT = 6        # burst: alert stop flag / serve: alerting bank

#: Serve-kernel stop codes.
SERVE_DONE = 0       # every request served
SERVE_ADVANCE = 1    # queues empty: wrapper must advance the clock
SERVE_EVENT = 2      # next issue crosses a scheduled event
SERVE_ALERT = 3      # a policy requested an ALERT (ACT committed)


def _act_burst(rows, prac_row, shadow_rows, shadow_counts,
               m_rows, m_counts, fstate, istate,
               t_rc, gap, not_before, next_ref, next_ext, window_end,
               eth, ath, level):
    """Serve one between-events ACT burst to a single bank.

    Mirrors the inner loop of :meth:`SubchannelSim.activate_many`
    exactly: same timing floors, same event gates, same shadow-counter
    and MOAT tracker updates (``level == 0`` means the unprotected
    baseline: no tracker, no ALERT). Stops at the first ACT that would
    interact with a scheduled event, or when a MOAT observation
    crosses ATH (the triggering ACT *is* committed, as in the pure
    loop; the wrapper then latches the ALERT request).
    """
    n = rows.shape[0]
    i = istate[I_NEXT]
    now = fstate[F_NOW]
    channel_free = fstate[F_CMD_FREE]
    bank_free = fstate[F_E_NOW]
    last_start = fstate[F_LAST]
    n_shadow = shadow_rows.shape[0]
    acts = 0
    fill = istate[I_FILL]
    alerting = 0
    while i < n:
        start = now
        if channel_free > start:
            start = channel_free
        if bank_free > start:
            start = bank_free
        if not_before > start:
            start = not_before
        complete = start + t_rc
        if next_ref < complete or next_ext <= start or complete > window_end:
            break
        row = rows[i]
        count = prac_row[row] + 1
        prac_row[row] = count
        for k in range(n_shadow):
            if shadow_rows[k] == row:
                count = shadow_counts[k] + 1
                shadow_counts[k] = count
                break
        i += 1
        acts += 1
        now = start
        last_start = start
        channel_free = start + gap
        bank_free = complete
        if level > 0:
            # MOAT on_activate: refresh a tracked slot, else insert
            # above ETH (replace-first-minimum, only if stronger).
            slot = -1
            for k in range(fill):
                if m_rows[k] == row:
                    slot = k
                    break
            if slot >= 0:
                m_counts[slot] = count
            elif count > eth:
                if fill < level:
                    m_rows[fill] = row
                    m_counts[fill] = count
                    fill += 1
                else:
                    weakest = 0
                    for k in range(1, fill):
                        if m_counts[k] < m_counts[weakest]:
                            weakest = k
                    if count > m_counts[weakest]:
                        m_rows[weakest] = row
                        m_counts[weakest] = count
            if count > ath:
                # Force-track the offender, then request the ALERT.
                tracked = -1
                for k in range(fill):
                    if m_rows[k] == row:
                        tracked = k
                        break
                if tracked < 0:
                    if fill < level:
                        m_rows[fill] = row
                        m_counts[fill] = count
                        fill += 1
                    else:
                        weakest = 0
                        for k in range(1, fill):
                            if m_counts[k] < m_counts[weakest]:
                                weakest = k
                        m_rows[weakest] = row
                        m_counts[weakest] = count
                alerting = 1
                break
    fstate[F_NOW] = now
    fstate[F_CMD_FREE] = channel_free
    fstate[F_E_NOW] = bank_free
    fstate[F_LAST] = last_start
    istate[I_NEXT] = i
    istate[I_ACTS] = acts
    istate[I_FILL] = fill
    istate[I_ALERT] = alerting


def _serve_closed(issue, rbank, rrow,
                  q_seq, q_ridx, q_enq, q_head, q_count, freed,
                  out_ridx, out_enq, out_start, out_complete,
                  prac, shadow_rows, shadow_counts,
                  m_rows, m_counts, pfill, bank_free, acts_per_bank,
                  fstate, istate,
                  cap, n_banks, frfcfs, t_rc, gap, t_cmd_gap,
                  eth, ath, level, next_ref, next_ext, window_end):
    """Serve closed-page requests on one sub-channel until an event.

    One iteration = the exact reference-controller step (in-order
    admission, FCFS/FR-FCFS pick over per-bank ring queues, inline
    engine issue, MOAT/null policy observation). Returns a stop code;
    the wrapper handles whatever the kernel cannot (clock advances,
    REFs, ALERT episodes, external services) and re-enters.
    """
    n = issue.shape[0]
    next_i = istate[I_NEXT]
    seq = istate[I_SEQ]
    queued = istate[I_QUEUED]
    out_n = istate[I_OUT]
    acts = istate[I_ACTS]
    now = fstate[F_NOW]
    cmd_free = fstate[F_CMD_FREE]
    admit_floor = fstate[F_ADMIT]
    e_now = fstate[F_E_NOW]
    e_chfree = fstate[F_E_CHFREE]
    n_shadow = shadow_rows.shape[1]
    code = SERVE_DONE
    while out_n < n:
        # In-order admission of every arrival at or before `now`.
        while next_i < n:
            t = issue[next_i]
            if t > now:
                break
            qi = rbank[next_i]
            if q_count[qi] >= cap:
                break
            enq = t
            if admit_floor > enq:
                enq = admit_floor
            if freed[qi] > enq:
                enq = freed[qi]
            admit_floor = enq
            slot = qi * cap + (q_head[qi] + q_count[qi]) % cap
            q_seq[slot] = seq
            q_ridx[slot] = next_i
            q_enq[slot] = enq
            seq += 1
            q_count[qi] += 1
            queued += 1
            next_i += 1
        if queued == 0:
            code = SERVE_ADVANCE
            break
        # Scheduler pick (closed page: always the queue head).
        best_qi = -1
        best_est = 0.0
        best_seq = 0
        if frfcfs:
            for qi in range(n_banks):
                if q_count[qi] == 0:
                    continue
                est = now
                if cmd_free > est:
                    est = cmd_free
                if bank_free[qi] > est:
                    est = bank_free[qi]
                hseq = q_seq[qi * cap + q_head[qi]]
                if (best_qi < 0 or est < best_est
                        or (est == best_est and hseq < best_seq)):
                    best_qi = qi
                    best_est = est
                    best_seq = hseq
        else:
            for qi in range(n_banks):
                if q_count[qi] == 0:
                    continue
                hseq = q_seq[qi * cap + q_head[qi]]
                if best_qi < 0 or hseq < best_seq:
                    best_qi = qi
                    best_seq = hseq
        qi = best_qi
        # Inline engine issue, gated on scheduled events.
        start = e_now
        if e_chfree > start:
            start = e_chfree
        if bank_free[qi] > start:
            start = bank_free[qi]
        if cmd_free > start:
            start = cmd_free
        complete = start + t_rc
        if next_ref < complete or next_ext <= start or complete > window_end:
            code = SERVE_EVENT
            break
        head = q_head[qi]
        slot = qi * cap + head
        ridx = q_ridx[slot]
        enq = q_enq[slot]
        was_full = q_count[qi] == cap
        q_head[qi] = (head + 1) % cap
        q_count[qi] -= 1
        queued -= 1
        row = rrow[ridx]
        count = prac[qi, row] + 1
        prac[qi, row] = count
        for k in range(n_shadow):
            if shadow_rows[qi, k] == row:
                count = shadow_counts[qi, k] + 1
                shadow_counts[qi, k] = count
                break
        acts += 1
        acts_per_bank[qi] += 1
        e_now = start
        e_chfree = start + gap
        bank_free[qi] = complete
        cmd_free = start + t_cmd_gap
        if was_full:
            freed[qi] = start
        if start > now:
            now = start
        out_ridx[out_n] = ridx
        out_enq[out_n] = enq
        out_start[out_n] = start
        out_complete[out_n] = complete
        out_n += 1
        if level > 0:
            fill = pfill[qi]
            slot2 = -1
            for k in range(fill):
                if m_rows[qi, k] == row:
                    slot2 = k
                    break
            if slot2 >= 0:
                m_counts[qi, slot2] = count
            elif count > eth:
                if fill < level:
                    m_rows[qi, fill] = row
                    m_counts[qi, fill] = count
                    pfill[qi] = fill + 1
                else:
                    weakest = 0
                    for k in range(1, fill):
                        if m_counts[qi, k] < m_counts[qi, weakest]:
                            weakest = k
                    if count > m_counts[qi, weakest]:
                        m_rows[qi, weakest] = row
                        m_counts[qi, weakest] = count
            if count > ath:
                fill = pfill[qi]
                tracked = -1
                for k in range(fill):
                    if m_rows[qi, k] == row:
                        tracked = k
                        break
                if tracked < 0:
                    if fill < level:
                        m_rows[qi, fill] = row
                        m_counts[qi, fill] = count
                        pfill[qi] = fill + 1
                    else:
                        weakest = 0
                        for k in range(1, fill):
                            if m_counts[qi, k] < m_counts[qi, weakest]:
                                weakest = k
                        m_rows[qi, weakest] = row
                        m_counts[qi, weakest] = count
                fstate[F_LAST] = complete
                istate[I_ALERT] = qi
                code = SERVE_ALERT
                break
    istate[I_NEXT] = next_i
    istate[I_SEQ] = seq
    istate[I_QUEUED] = queued
    istate[I_OUT] = out_n
    istate[I_ACTS] = acts
    fstate[F_NOW] = now
    fstate[F_CMD_FREE] = cmd_free
    fstate[F_ADMIT] = admit_floor
    fstate[F_E_NOW] = e_now
    fstate[F_E_CHFREE] = e_chfree
    return code


# ---------------------------------------------------------------------------
# Backend objects
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Backend:
    """One registered kernel implementation set.

    Attributes:
        name: Registered backend name.
        use_kernels: Whether the engine/controller should route
            eligible hot loops through :attr:`act_burst` /
            :attr:`serve_closed` (False for ``pure``).
        compiled: Whether the kernels are JIT-compiled (``numba``
            with numba importable). The interpreted ``kernel``
            backend has ``use_kernels=True, compiled=False``.
        act_burst: The engine ACT-burst kernel (``None`` for pure).
        serve_closed: The controller serve kernel (``None`` for pure).
        description: One-line description surfaced by ``repro backend``
            listings and the lint registry-coverage rule.
    """

    name: str
    use_kernels: bool
    compiled: bool
    act_burst: Optional[Callable] = None
    serve_closed: Optional[Callable] = None
    description: str = ""


_PURE = Backend(
    name="pure", use_kernels=False, compiled=False,
    description="reference event-loop interpreter, no kernels; the "
    "semantics the other backends must match bit-for-bit",
)
_KERNEL = Backend(
    name="kernel", use_kernels=True, compiled=False,
    act_burst=_act_burst, serve_closed=_serve_closed,
    description="struct-of-arrays hot-loop kernels, interpreted; "
    "same source functions the numba backend compiles",
)
#: Registration metadata for the numba backend, kept outside
#: :func:`_jit_backend` so listings can describe it without importing
#: numba.
_NUMBA_DESCRIPTION = (
    "njit-compiled struct-of-arrays kernels ([fast] extra); falls "
    "back to 'pure' when numba is missing"
)
_NUMBA: Optional[Backend] = None
_WARNED_FALLBACK = False


def _jit_backend() -> Backend:
    """Build (once) the numba backend with jitted kernels."""
    global _NUMBA
    if _NUMBA is None:
        from numba import njit  # noqa: deferred heavy import

        _NUMBA = Backend(
            name="numba", use_kernels=True, compiled=True,
            act_burst=njit(cache=True)(_act_burst),
            serve_closed=njit(cache=True)(_serve_closed),
            description=_NUMBA_DESCRIPTION,
        )
    return _NUMBA


def backend_descriptions() -> "dict":
    """Name -> {description, use_kernels, compiled} for listings.

    The ``numba`` entry is described from its registration metadata
    without importing numba (the jitted Backend object is only built
    on first resolve).
    """
    return {
        "pure": {
            "description": _PURE.description,
            "use_kernels": _PURE.use_kernels,
            "compiled": _PURE.compiled,
        },
        "kernel": {
            "description": _KERNEL.description,
            "use_kernels": _KERNEL.use_kernels,
            "compiled": _KERNEL.compiled,
        },
        "numba": {
            "description": _NUMBA_DESCRIPTION,
            "use_kernels": True,
            "compiled": True,
        },
    }


def resolve_backend(name: Optional[str] = None) -> Backend:
    """Resolve a backend by precedence: config field, env, ``pure``.

    ``numba`` degrades gracefully to ``pure`` (with one warning per
    process) when numba is not importable, so configs and scripts can
    name it unconditionally.
    """
    global _WARNED_FALLBACK
    if name is None:
        name = os.environ.get(BACKEND_ENV) or "pure"
    if name == "pure":
        return _PURE
    if name == "kernel":
        return _KERNEL
    if name == "numba":
        if numba_available():
            return _jit_backend()
        if not _WARNED_FALLBACK:
            _WARNED_FALLBACK = True
            print(
                "repro: backend 'numba' requested but numba is not "
                "installed; falling back to 'pure' (install the "
                "[fast] extra to enable it)",
                file=sys.stderr,
            )
        return _PURE
    raise ValueError(
        f"unknown backend {name!r}; known: {', '.join(BACKEND_NAMES)}"
    )
