"""Security-evaluation front-end: attacks through the channel stack.

The attack analogue of :mod:`repro.sim.perf`: a declarative
:class:`~repro.attacks.registry.AttackSpec` plus a shared
:class:`~repro.attacks.base.AttackRunConfig` (geometry, sub-channel
count, seed, timing) fully describe one security run, and
:func:`run_attack` executes it through the channel → sub-channel → bank
hierarchy (:class:`~repro.sim.channel.ChannelSim`). At one sub-channel
the results are bit-identical to the historical bare-engine attack
harness (pinned in ``tests/attacks/test_attack_port_identity.py``).

This module is what the attack sweep runner
(:mod:`repro.sweep.attack_runner`) calls in worker processes: both
halves of the description are hashable and picklable, so attack points
cache and parallelize exactly like performance points.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.attacks.base import AttackResult, AttackRunConfig
from repro.attacks.registry import AttackSpec

__all__ = ["AttackRunConfig", "AttackResult", "AttackSpec", "run_attack"]


def run_attack(
    attack: Union[AttackSpec, str],
    run: Optional[AttackRunConfig] = None,
    **params: object,
) -> AttackResult:
    """Execute one attack against its target design.

    Args:
        attack: An :class:`AttackSpec`, or a registered kind name
            (convenience: ``run_attack("ratchet", pool_size=16)``).
        run: Shared run configuration; defaults to the paper geometry
            at one sub-channel.
        params: Extra attack parameters merged into the spec (only
            valid with a string ``attack``; a ready spec is immutable).

    Returns:
        The attack's :class:`AttackResult`.
    """
    if isinstance(attack, str):
        spec = AttackSpec.of(attack, **params)
    else:
        if params:
            raise TypeError(
                "params are only accepted with a kind name; "
                "build the AttackSpec with AttackSpec.of(...) instead"
            )
        spec = attack
    return spec.execute(run)
