"""Workload-driven performance evaluation front-end.

Feeds a synthetic activation schedule (one or more banks) through the
sub-channel simulator with a mitigation policy and reports the paper's
evaluation metrics:

* ALERTs per tREFI per sub-channel (Figure 11b / 17b) — per-bank alert
  counts scaled to the 32 banks of a sub-channel.
* Slowdown (Figure 11a / 17a, Tables 5-7) — the sub-channel stall
  fraction caused by ALERT RFMs. The paper measures weighted speedup on
  an 8-core OoO simulator; for MOAT the entire effect is the memory
  unavailability during ALERTs, so the stall fraction reproduces the
  slowdown's magnitude and shape (0.28% average at ATH=64; see
  DESIGN.md for the substitution argument).
* Mitigations+ALERTs per tREFW per bank (Table 5).
* Activation-energy overhead (Section 6.5).

The front-end is policy-generic: :class:`RunConfig` carries a
declarative :class:`~repro.mitigations.registry.PolicySpec`, so the
same harness evaluates MOAT, Panopticon, PARA, TRR, Graphene, victim
counting, or the unprotected baseline (the Figure 17 / ablation
scenario space). :data:`MoatRunConfig` remains as a compatibility
alias — the default spec is MOAT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.dram.refresh import CounterResetPolicy
from repro.dram.timing import DramTiming, DDR5_PRAC_TIMING
from repro.mitigations.registry import PolicySpec, RunParams
from repro.sim.engine import SimConfig, SubchannelSim
from repro.workloads.generator import ActivationSchedule, generate_schedule
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class RunConfig:
    """Configuration of one performance run (any mitigation policy)."""

    ath: int = 64
    eth: Optional[int] = None  # defaults to ath // 2
    abo_level: int = 1
    #: Which mitigation policy defends each bank.
    policy: PolicySpec = field(default_factory=PolicySpec)
    #: REF periods per completed proactive mitigation; ``0`` disables
    #: the proactive path (ALERT-only, Appendix C "none"); ``None``
    #: uses the policy's native cadence (5 for MOAT, 4 for Panopticon).
    trefi_per_mitigation: Optional[int] = None
    banks_simulated: int = 1
    banks_per_subchannel: int = 32
    n_trefi: int = 8192
    seed: int = 0
    timing: DramTiming = field(default_factory=lambda: DDR5_PRAC_TIMING)
    #: An ALERT's RFM services every bank of the sub-channel, so the
    #: unsimulated banks' ALERTs also mitigate the simulated banks'
    #: tracked rows. With this enabled the run iterates to a fixed
    #: point: measure the per-bank ALERT rate, inject the corresponding
    #: external service stream, and re-run (self-stabilizing, which is
    #: why real 32-bank systems see low ALERT rates).
    model_cross_bank_service: bool = True
    fixed_point_iterations: int = 5

    @property
    def eth_resolved(self) -> int:
        """ETH with the paper's ATH/2 default applied."""
        return self.ath // 2 if self.eth is None else self.eth

    @property
    def trefi_per_mitigation_resolved(self) -> int:
        """Proactive cadence with the policy's default applied."""
        if self.trefi_per_mitigation is None:
            return self.policy.default_trefi_per_mitigation
        return self.trefi_per_mitigation


#: Backwards-compatible name from when the front-end was MOAT-only.
MoatRunConfig = RunConfig


@dataclass
class PerfResult:
    """Metrics of one workload x configuration run."""

    workload: str
    ath: int
    eth: int
    abo_level: int
    alerts: int
    n_trefi: int
    banks_simulated: int
    banks_per_subchannel: int
    total_acts: int
    mitigation_acts: int
    proactive_mitigations: int
    reactive_mitigations: int
    elapsed_ns: float
    stall_ns: float
    policy: str = "moat"

    @property
    def alerts_per_trefi(self) -> float:
        """ALERTs per tREFI per sub-channel (Figure 11b metric)."""
        scale = self.banks_per_subchannel / self.banks_simulated
        return self.alerts * scale / self.n_trefi

    @property
    def slowdown(self) -> float:
        """Sub-channel stall fraction from ALERTs (Figure 11a metric)."""
        scale = self.banks_per_subchannel / self.banks_simulated
        return (self.stall_ns * scale) / self.elapsed_ns if self.elapsed_ns else 0.0

    @property
    def normalized_performance(self) -> float:
        return 1.0 - self.slowdown

    @property
    def mitigations_per_trefw_per_bank(self) -> float:
        """Proactive mitigations + ALERTs per tREFW per bank (Table 5)."""
        window_fraction = self.n_trefi / 8192.0
        per_bank = (self.proactive_mitigations + self.alerts) / self.banks_simulated
        return per_bank / window_fraction

    @property
    def activation_overhead(self) -> float:
        """Extra activations spent on mitigation (Section 6.5)."""
        if self.total_acts == 0:
            return 0.0
        return self.mitigation_acts / self.total_acts

    def as_metrics(self) -> Dict[str, float]:
        """Flat metric dict (sweep artifacts, ``summary.json``)."""
        return {
            "alerts": float(self.alerts),
            "alerts_per_trefi": self.alerts_per_trefi,
            "slowdown": self.slowdown,
            "normalized_performance": self.normalized_performance,
            "mitigations_per_trefw_per_bank": self.mitigations_per_trefw_per_bank,
            "activation_overhead": self.activation_overhead,
            "total_acts": float(self.total_acts),
            "proactive_mitigations": float(self.proactive_mitigations),
            "reactive_mitigations": float(self.reactive_mitigations),
        }


def run_workload(
    profile: WorkloadProfile,
    config: RunConfig = RunConfig(),
    schedule: Optional[ActivationSchedule] = None,
) -> PerfResult:
    """Simulate one workload against the configured policy.

    Args:
        profile: Table 4 workload profile.
        config: Policy and simulation parameters.
        schedule: Pre-generated schedule for bank 0 (one is generated
            per bank otherwise; supplying one forces single-bank mode).
    """
    banks = 1 if schedule is not None else config.banks_simulated
    schedules = (
        [schedule]
        if schedule is not None
        else [
            generate_schedule(
                profile,
                n_trefi=config.n_trefi,
                seed=config.seed + bank,
            )
            for bank in range(banks)
        ]
    )

    result = _run_once(profile, config, schedules, banks, None)
    if not config.model_cross_bank_service or result.alerts == 0:
        return result

    # Solve the self-consistency equation: the per-bank ALERT rate y
    # must satisfy y = f(other_banks * y), where f(x) is the measured
    # rate when an external service stream of rate x is injected. f is
    # monotonically decreasing (more cross-bank services, fewer
    # ALERTs), so bisection on y converges. The search runs on a log
    # scale because the equilibrium can sit far below the unaided rate
    # f(0): one ALERT services all 32 banks at once, so configurations
    # whose unaided rate is huge (low ATH, no proactive mitigation)
    # equilibrate near f(0)/banks_per_subchannel. The returned run is
    # the candidate closest to self-consistency — never an
    # over-injected zero-alert run, since f(0) > 0 implies the
    # equilibrium rate is strictly positive.
    other_banks = config.banks_per_subchannel - banks
    unaided = result.alerts / banks / result.elapsed_ns
    log_lo = math.log(unaided / (4.0 * config.banks_per_subchannel))
    log_hi = math.log(unaided)
    for _ in range(config.fixed_point_iterations):
        target = math.exp((log_lo + log_hi) / 2.0)
        candidate = _run_once(
            profile, config, schedules, banks, 1.0 / (other_banks * target)
        )
        measured = candidate.alerts / banks / candidate.elapsed_ns
        if measured > target:
            log_lo = math.log(target)
        else:
            log_hi = math.log(target)
    # Final run at the bracket midpoint: the measured rate there is the
    # reported equilibrium (never an extrapolated or fudged number).
    equilibrium = math.exp((log_lo + log_hi) / 2.0)
    return _run_once(
        profile, config, schedules, banks, 1.0 / (other_banks * equilibrium)
    )


def _run_once(
    profile: WorkloadProfile,
    config: RunConfig,
    schedules,
    banks: int,
    external_interval: Optional[float],
) -> PerfResult:
    sim_config = SimConfig(
        timing=config.timing,
        num_banks=banks,
        rows_per_bank=64 * 1024,
        num_refresh_groups=8192,
        reset_policy=CounterResetPolicy.SAFE,
        trefi_per_mitigation=config.trefi_per_mitigation_resolved,
        abo_level=config.abo_level,
        track_danger=False,
        external_service_interval_ns=external_interval,
    )
    eth = config.eth_resolved
    run_params = RunParams(
        ath=config.ath,
        eth=eth,
        abo_level=config.abo_level,
        seed=config.seed,
        timing=config.timing,
    )
    sim = SubchannelSim(sim_config, config.policy.make_factory(run_params))
    n_trefi = schedules[0].n_trefi
    trefi = config.timing.t_refi

    for interval in range(n_trefi):
        target = interval * trefi
        if sim.now < target:
            sim.advance_to(target)
        for bank, sched in enumerate(schedules):
            if interval < sched.n_trefi:
                for row in sched.per_trefi[interval]:
                    sim.activate(row, bank=bank)
    sim.flush()

    stall_ns = sim.alerts * config.abo_level * config.timing.t_rfm
    return PerfResult(
        workload=profile.name,
        ath=config.ath,
        eth=eth,
        abo_level=config.abo_level,
        alerts=sim.alerts,
        n_trefi=n_trefi,
        banks_simulated=banks,
        banks_per_subchannel=config.banks_per_subchannel,
        total_acts=sim.total_acts,
        mitigation_acts=sum(b.mitigation_activations for b in sim.banks),
        proactive_mitigations=sim.proactive_count,
        reactive_mitigations=sim.reactive_count,
        elapsed_ns=max(sim.now, n_trefi * trefi),
        stall_ns=stall_ns,
        policy=config.policy.display_name(),
    )


def run_suite(
    profiles,
    config: RunConfig = RunConfig(),
) -> Dict[str, PerfResult]:
    """Run a list of profiles; returns ``{workload_name: PerfResult}``."""
    return {p.name: run_workload(p, config) for p in profiles}


def geometric_mean_performance(results: Dict[str, PerfResult]) -> float:
    """Gmean of normalized performance across workloads (Figure 11a)."""
    if not results:
        return 1.0
    product = 1.0
    for result in results.values():
        product *= result.normalized_performance
    return product ** (1.0 / len(results))


def average_slowdown(results: Dict[str, PerfResult]) -> float:
    """Arithmetic-mean slowdown across workloads."""
    if not results:
        return 0.0
    return sum(r.slowdown for r in results.values()) / len(results)


def average_alert_rate(results: Dict[str, PerfResult]) -> float:
    """Mean ALERTs-per-tREFI across workloads (Figure 11b average)."""
    if not results:
        return 0.0
    return sum(r.alerts_per_trefi for r in results.values()) / len(results)
