"""Workload-driven performance evaluation front-end.

Feeds a synthetic activation schedule (one or more banks, one or more
sub-channels) through the channel simulation hierarchy
(:class:`~repro.sim.channel.ChannelSim` over
:class:`~repro.sim.engine.SubchannelSim`) with a mitigation policy,
using the engine's batched ``activate_many`` hot path, and reports the
paper's evaluation metrics. Recorded physical-address traces run
through the same machinery via :func:`run_trace`. Metrics:

* ALERTs per tREFI per sub-channel (Figure 11b / 17b) — per-bank alert
  counts scaled to the 32 banks of a sub-channel.
* Slowdown (Figure 11a / 17a, Tables 5-7) — the sub-channel stall
  fraction caused by ALERT RFMs. The paper measures weighted speedup on
  an 8-core OoO simulator; for MOAT the entire effect is the memory
  unavailability during ALERTs, so the stall fraction reproduces the
  slowdown's magnitude and shape (0.28% average at ATH=64; see
  DESIGN.md for the substitution argument).
* Mitigations+ALERTs per tREFW per bank (Table 5).
* Activation-energy overhead (Section 6.5).

The front-end is policy-generic: :class:`RunConfig` carries a
declarative :class:`~repro.mitigations.registry.PolicySpec`, so the
same harness evaluates MOAT, Panopticon, PARA, TRR, Graphene, victim
counting, or the unprotected baseline (the Figure 17 / ablation
scenario space). :data:`MoatRunConfig` remains as a compatibility
alias — the default spec is MOAT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.dram.refresh import CounterResetPolicy
from repro.dram.timing import DramTiming, DDR5_PRAC_TIMING
from repro.mitigations.registry import PolicySpec, RunParams
from repro.sim.channel import ChannelConfig, ChannelSim
from repro.sim.engine import SimConfig
from repro.workloads.generator import (
    ActivationSchedule,
    generate_channel_schedules,
)
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class RunConfig:
    """Configuration of one performance run (any mitigation policy)."""

    ath: int = 64
    eth: Optional[int] = None  # defaults to ath // 2
    abo_level: int = 1
    #: Which mitigation policy defends each bank.
    policy: PolicySpec = field(default_factory=PolicySpec)
    #: REF periods per completed proactive mitigation; ``0`` disables
    #: the proactive path (ALERT-only, Appendix C "none"); ``None``
    #: uses the policy's native cadence (5 for MOAT, 4 for Panopticon).
    trefi_per_mitigation: Optional[int] = None
    banks_simulated: int = 1
    banks_per_subchannel: int = 32
    #: Sub-channels simulated per run. Each sub-channel carries its own
    #: ``banks_simulated`` banks with independent schedule draws; the
    #: channel front-end arbitrates command issue across them. ``1``
    #: reproduces the original single-sub-channel runs bit-for-bit.
    subchannels: int = 1
    n_trefi: int = 8192
    seed: int = 0
    timing: DramTiming = field(default_factory=lambda: DDR5_PRAC_TIMING)
    #: An ALERT's RFM services every bank of the sub-channel, so the
    #: unsimulated banks' ALERTs also mitigate the simulated banks'
    #: tracked rows. With this enabled the run iterates to a fixed
    #: point: measure the per-bank ALERT rate, inject the corresponding
    #: external service stream, and re-run (self-stabilizing, which is
    #: why real 32-bank systems see low ALERT rates).
    model_cross_bank_service: bool = True
    fixed_point_iterations: int = 5
    #: Kernel backend for the batched hot loops (``"pure"``,
    #: ``"kernel"``, ``"numba"``; ``None`` defers to ``REPRO_BACKEND``
    #: then ``"pure"``). Equivalence-gated — results are bit-identical
    #: across backends, so this is hashed out of sweep identities.
    backend: Optional[str] = None

    @property
    def eth_resolved(self) -> int:
        """ETH with the paper's ATH/2 default applied."""
        return self.ath // 2 if self.eth is None else self.eth

    @property
    def trefi_per_mitigation_resolved(self) -> int:
        """Proactive cadence with the policy's default applied."""
        if self.trefi_per_mitigation is None:
            return self.policy.default_trefi_per_mitigation
        return self.trefi_per_mitigation


#: Backwards-compatible name from when the front-end was MOAT-only.
MoatRunConfig = RunConfig


@dataclass
class PerfResult:
    """Metrics of one workload x configuration run."""

    workload: str
    ath: int
    eth: int
    abo_level: int
    alerts: int
    n_trefi: int
    banks_simulated: int
    banks_per_subchannel: int
    total_acts: int
    mitigation_acts: int
    proactive_mitigations: int
    reactive_mitigations: int
    elapsed_ns: float
    stall_ns: float
    policy: str = "moat"
    #: Sub-channels simulated; counters (``alerts``, ``total_acts``,
    #: ``stall_ns``...) are totals across all of them, and the
    #: per-sub-channel metrics below divide the totals back out.
    subchannels: int = 1

    @property
    def alerts_per_trefi(self) -> float:
        """ALERTs per tREFI per sub-channel (Figure 11b metric)."""
        scale = self.banks_per_subchannel / self.banks_simulated
        return self.alerts * scale / self.n_trefi / self.subchannels

    @property
    def slowdown(self) -> float:
        """Sub-channel stall fraction from ALERTs (Figure 11a metric)."""
        if not self.elapsed_ns:
            return 0.0
        scale = self.banks_per_subchannel / self.banks_simulated
        return (self.stall_ns * scale / self.subchannels) / self.elapsed_ns

    @property
    def normalized_performance(self) -> float:
        return 1.0 - self.slowdown

    @property
    def mitigations_per_trefw_per_bank(self) -> float:
        """Proactive mitigations + ALERTs per tREFW per bank (Table 5)."""
        window_fraction = self.n_trefi / 8192.0
        banks = self.banks_simulated * self.subchannels
        per_bank = (self.proactive_mitigations + self.alerts) / banks
        return per_bank / window_fraction

    @property
    def activation_overhead(self) -> float:
        """Extra activations spent on mitigation (Section 6.5)."""
        if self.total_acts == 0:
            return 0.0
        return self.mitigation_acts / self.total_acts

    def as_metrics(self) -> Dict[str, float]:
        """Flat metric dict (sweep artifacts, ``summary.json``)."""
        return {
            "alerts": float(self.alerts),
            "alerts_per_trefi": self.alerts_per_trefi,
            "slowdown": self.slowdown,
            "normalized_performance": self.normalized_performance,
            "mitigations_per_trefw_per_bank": self.mitigations_per_trefw_per_bank,
            "activation_overhead": self.activation_overhead,
            "total_acts": float(self.total_acts),
            "proactive_mitigations": float(self.proactive_mitigations),
            "reactive_mitigations": float(self.reactive_mitigations),
        }


def run_workload(
    profile: WorkloadProfile,
    config: RunConfig = RunConfig(),
    schedule: Optional[ActivationSchedule] = None,
) -> PerfResult:
    """Simulate one workload against the configured policy.

    Args:
        profile: Table 4 workload profile.
        config: Policy and simulation parameters.
        schedule: Pre-generated schedule for bank 0 (one is generated
            per (sub-channel, bank) otherwise; supplying one forces
            single-bank, single-sub-channel mode).
    """
    if schedule is not None:
        banks, subchannels = 1, 1
        schedules = [[schedule]]
    else:
        banks, subchannels = config.banks_simulated, config.subchannels
        schedules = generate_channel_schedules(
            profile,
            num_subchannels=subchannels,
            banks_per_subchannel=banks,
            n_trefi=config.n_trefi,
            seed=config.seed,
        )

    result = _run_once(profile, config, schedules, banks, subchannels, None)
    if not config.model_cross_bank_service or result.alerts == 0:
        return result

    # Solve the self-consistency equation: the per-bank ALERT rate y
    # must satisfy y = f(other_banks * y), where f(x) is the measured
    # rate when an external service stream of rate x is injected. f is
    # monotonically decreasing (more cross-bank services, fewer
    # ALERTs), so bisection on y converges. The search runs on a log
    # scale because the equilibrium can sit far below the unaided rate
    # f(0): one ALERT services all 32 banks at once, so configurations
    # whose unaided rate is huge (low ATH, no proactive mitigation)
    # equilibrate near f(0)/banks_per_subchannel. The returned run is
    # the candidate closest to self-consistency — never an
    # over-injected zero-alert run, since f(0) > 0 implies the
    # equilibrium rate is strictly positive.
    other_banks = config.banks_per_subchannel - banks
    sim_banks = banks * subchannels
    unaided = result.alerts / sim_banks / result.elapsed_ns
    log_lo = math.log(unaided / (4.0 * config.banks_per_subchannel))
    log_hi = math.log(unaided)
    for _ in range(config.fixed_point_iterations):
        target = math.exp((log_lo + log_hi) / 2.0)
        candidate = _run_once(
            profile, config, schedules, banks, subchannels,
            1.0 / (other_banks * target),
        )
        measured = candidate.alerts / sim_banks / candidate.elapsed_ns
        if measured > target:
            log_lo = math.log(target)
        else:
            log_hi = math.log(target)
    # Final run at the bracket midpoint: the measured rate there is the
    # reported equilibrium (never an extrapolated or fudged number).
    equilibrium = math.exp((log_lo + log_hi) / 2.0)
    return _run_once(
        profile, config, schedules, banks, subchannels,
        1.0 / (other_banks * equilibrium),
    )


def _run_once(
    profile: WorkloadProfile,
    config: RunConfig,
    schedules,
    banks: int,
    subchannels: int,
    external_interval: Optional[float],
) -> PerfResult:
    """One channel run over pre-generated ``schedules[sub][bank]``."""
    sim_config = SimConfig(
        timing=config.timing,
        num_banks=banks,
        rows_per_bank=64 * 1024,
        num_refresh_groups=8192,
        reset_policy=CounterResetPolicy.SAFE,
        trefi_per_mitigation=config.trefi_per_mitigation_resolved,
        abo_level=config.abo_level,
        track_danger=False,
        external_service_interval_ns=external_interval,
        dense_counters=True,
        backend=config.backend,
    )
    eth = config.eth_resolved
    run_params = RunParams(
        ath=config.ath,
        eth=eth,
        abo_level=config.abo_level,
        seed=config.seed,
        timing=config.timing,
    )
    channel = ChannelSim(
        ChannelConfig(sim=sim_config, num_subchannels=subchannels),
        config.policy.make_factory(run_params),
    )
    n_trefi = schedules[0][0].n_trefi
    trefi = config.timing.t_refi

    for interval in range(n_trefi):
        target = interval * trefi
        if channel.now < target:
            channel.advance_to(target)
        for sub, bank_schedules in enumerate(schedules):
            for bank, sched in enumerate(bank_schedules):
                if interval < sched.n_trefi:
                    channel.activate_many(
                        sched.per_trefi[interval], bank=bank, subchannel=sub
                    )
    channel.flush()

    stall_ns = channel.alerts * config.abo_level * config.timing.t_rfm
    return PerfResult(
        workload=profile.name,
        ath=config.ath,
        eth=eth,
        abo_level=config.abo_level,
        alerts=channel.alerts,
        n_trefi=n_trefi,
        banks_simulated=banks,
        banks_per_subchannel=config.banks_per_subchannel,
        total_acts=channel.total_acts,
        mitigation_acts=channel.mitigation_activations,
        proactive_mitigations=channel.proactive_count,
        reactive_mitigations=channel.reactive_count,
        elapsed_ns=max(channel.now, n_trefi * trefi),
        stall_ns=stall_ns,
        policy=config.policy.display_name(),
        subchannels=subchannels,
    )


def run_trace(
    trace,
    config: RunConfig = RunConfig(),
    mapping=None,
    honor_timing: bool = True,
) -> PerfResult:
    """Replay a physical-address trace as a first-class workload.

    Builds a channel whose geometry matches the mapping (every bank of
    every sub-channel simulated, so no cross-bank service modelling is
    needed — partial-simulation scaling factors all collapse to 1),
    replays the trace through it, and reports the standard
    :class:`PerfResult` metrics over the replayed duration.

    Args:
        trace: A :class:`repro.trace.AddressTrace`.
        config: Policy parameters (ATH/ETH/level/policy/cadence); the
            scale fields (``banks_simulated``, ``subchannels``,
            ``n_trefi``) are taken from the mapping and trace instead.
        mapping: Address mapping used to demultiplex the trace
            (default: :class:`~repro.sim.mapping.CoffeeLakeMapping`).
        honor_timing: See :func:`repro.trace.replay_addresses`.
    """
    from repro.sim.mapping import CoffeeLakeMapping
    from repro.trace import replay_addresses

    if mapping is None:
        mapping = CoffeeLakeMapping()
    sim_config = SimConfig(
        timing=config.timing,
        num_banks=mapping.num_banks,
        rows_per_bank=1 << mapping.row_bits,
        num_refresh_groups=8192,
        reset_policy=CounterResetPolicy.SAFE,
        trefi_per_mitigation=config.trefi_per_mitigation_resolved,
        abo_level=config.abo_level,
        track_danger=False,
        dense_counters=True,
        backend=config.backend,
    )
    eth = config.eth_resolved
    run_params = RunParams(
        ath=config.ath,
        eth=eth,
        abo_level=config.abo_level,
        seed=config.seed,
        timing=config.timing,
    )
    channel = ChannelSim(
        ChannelConfig(
            sim=sim_config,
            num_subchannels=mapping.num_subchannels,
            mapping=mapping,
        ),
        config.policy.make_factory(run_params),
    )
    replay_addresses(trace, channel, honor_timing=honor_timing)

    trefi = config.timing.t_refi
    elapsed_ns = max(channel.now, trace.duration_ns)
    # Normalize the per-tREFI metrics over the trace's *logical* window
    # (recorded by the synthesizer), matching how synthetic runs use
    # the schedule length; replay dilation — a saturated channel
    # overflowing past interval boundaries — must not deflate them.
    # Traces without the metadata fall back to the replayed duration.
    meta_trefi = trace.metadata.get("n_trefi")
    if isinstance(meta_trefi, (int, float)) and meta_trefi >= 1:
        n_trefi = int(meta_trefi)
    else:
        n_trefi = max(1, int(elapsed_ns // trefi))
    stall_ns = channel.alerts * config.abo_level * config.timing.t_rfm
    name = str(trace.metadata.get("workload", "trace"))
    return PerfResult(
        workload=name,
        ath=config.ath,
        eth=eth,
        abo_level=config.abo_level,
        alerts=channel.alerts,
        n_trefi=n_trefi,
        banks_simulated=mapping.num_banks,
        banks_per_subchannel=mapping.num_banks,
        total_acts=channel.total_acts,
        mitigation_acts=channel.mitigation_activations,
        proactive_mitigations=channel.proactive_count,
        reactive_mitigations=channel.reactive_count,
        elapsed_ns=elapsed_ns,
        stall_ns=stall_ns,
        policy=config.policy.display_name(),
        subchannels=mapping.num_subchannels,
    )


def run_suite(
    profiles,
    config: RunConfig = RunConfig(),
) -> Dict[str, PerfResult]:
    """Run a list of profiles; returns ``{workload_name: PerfResult}``."""
    return {p.name: run_workload(p, config) for p in profiles}


def geometric_mean_performance(results: Dict[str, PerfResult]) -> float:
    """Gmean of normalized performance across workloads (Figure 11a)."""
    if not results:
        return 1.0
    product = 1.0
    for result in results.values():
        product *= result.normalized_performance
    return product ** (1.0 / len(results))


def average_slowdown(results: Dict[str, PerfResult]) -> float:
    """Arithmetic-mean slowdown across workloads."""
    if not results:
        return 0.0
    return sum(r.slowdown for r in results.values()) / len(results)


def average_alert_rate(results: Dict[str, PerfResult]) -> float:
    """Mean ALERTs-per-tREFI across workloads (Figure 11b average)."""
    if not results:
        return 0.0
    return sum(r.alerts_per_trefi for r in results.values()) / len(results)
