"""Channel-level simulation: N sub-channels behind one command front.

The paper evaluates per sub-channel, but its arguments (tFAW-limited
ACT rates, ALERT scope, sub-channel ABO) are about a full DDR5 channel:
two 32-bit sub-channels that operate independently except for the
memory controller's shared command-issue front-end. :class:`ChannelSim`
composes that hierarchy explicitly:

* **Channel** — owns the sub-channels, demultiplexes physical-address
  traffic through an :class:`~repro.sim.mapping.AddressMapping`, and
  enforces the cross-sub-channel command-issue constraint: the MC
  issues at most one command per ``t_cmd_gap``, so commands to
  *different* sub-channels still contend for issue slots.
* **Sub-channel** — one :class:`~repro.sim.engine.SubchannelSim` per
  sub-channel: the clock, REF stream, ABO/ALERT machinery, and banks.
* **Bank** — per-row PRAC counters plus one mitigation policy each.

The default command gap is ``t_issue_gap / num_subchannels`` (the MC
issue rate scales with the channel width), which makes a one-sub-channel
channel *bit-identical* to a bare :class:`SubchannelSim`: the channel
floor then always coincides with the sub-channel's own issue-gap
constraint. The equivalence is load-bearing — the performance front-end
routes everything through :class:`ChannelSim`, and the committed sweep
baselines predate it.

Batched traffic (:meth:`ChannelSim.activate_many`) applies the
cross-sub-channel constraint at batch granularity: the batch's first
command waits for the channel's command front, and the batch then owns
the front until it completes. Per-command interleaving across
sub-channels uses :meth:`ChannelSim.access` / :meth:`ChannelSim.activate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.mitigations.base import MitigationPolicy
from repro.sim.engine import ActResult, SimConfig, SubchannelSim
from repro.sim.mapping import AddressMapping


@dataclass(frozen=True)
class ChannelConfig:
    """Static configuration of a channel simulation.

    Args:
        sim: Per-sub-channel configuration (every sub-channel is
            identical, as in the paper's Table 3 system).
        num_subchannels: Sub-channels in the channel (DDR5: 2).
        mapping: Optional address mapping for physical-address traffic
            (:meth:`ChannelSim.access`). When provided, its geometry
            must agree with ``sim`` — see :meth:`validate_mapping`.
        t_cmd_gap: Minimum time between commands issued by the channel
            front-end, across all sub-channels. ``None`` (default)
            resolves to ``sim.t_issue_gap / num_subchannels``.
    """

    sim: SimConfig = field(default_factory=SimConfig)
    num_subchannels: int = 1
    mapping: Optional[AddressMapping] = None
    t_cmd_gap: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_subchannels < 1:
            raise ValueError("num_subchannels must be at least 1")
        if self.mapping is not None:
            self.validate_mapping(self.mapping)

    def validate_mapping(self, mapping: AddressMapping) -> None:
        """Guard that the mapping's geometry matches the simulation.

        A mapping that decodes more banks (or sub-channels) than the
        simulation instantiates would silently fold distinct DRAM
        resources onto one simulated structure and corrupt every
        per-bank counter, so the mismatch is an error, not a warning.
        """
        if mapping.num_banks != self.sim.num_banks:
            raise ValueError(
                f"mapping decodes {mapping.num_banks} banks but "
                f"SimConfig.num_banks is {self.sim.num_banks}"
            )
        if mapping.num_subchannels != self.num_subchannels:
            raise ValueError(
                f"mapping decodes {mapping.num_subchannels} sub-channels "
                f"but the channel has {self.num_subchannels}"
            )
        rows = 1 << mapping.row_bits
        if rows != self.sim.rows_per_bank:
            raise ValueError(
                f"mapping decodes {rows} rows per bank but "
                f"SimConfig.rows_per_bank is {self.sim.rows_per_bank}"
            )

    @property
    def t_cmd_gap_resolved(self) -> float:
        """Command gap with the width-scaled default applied."""
        if self.t_cmd_gap is not None:
            return self.t_cmd_gap
        return self.sim.t_issue_gap / self.num_subchannels


class ChannelSim:
    """Event-ordered simulator of one DDR5 channel.

    Args:
        config: Channel and per-sub-channel parameters.
        policy_factory: Builds one mitigation policy per bank; called
            sub-channel by sub-channel, bank by bank (so stateful
            factories see a deterministic instance order).
    """

    def __init__(
        self,
        config: ChannelConfig,
        policy_factory: Callable[[], MitigationPolicy],
    ) -> None:
        self.config = config
        self.subchannels: List[SubchannelSim] = [
            SubchannelSim(config.sim, policy_factory)
            for _ in range(config.num_subchannels)
        ]
        self.mapping = config.mapping
        self._t_cmd_gap = config.t_cmd_gap_resolved
        #: Earliest time the channel front-end may issue a command.
        self._cmd_free = 0.0

    def attach_recorder(self, recorder, base: int = 0) -> None:
        """Point every sub-channel at an observability recorder.

        Args:
            recorder: A :class:`repro.obs.TraceRecorder` (or the null
                recorder to detach).
            base: Global index of this channel's first sub-channel —
                multi-channel system runs offset each shard by
                ``channel * num_subchannels`` so merged traces keep
                distinct tracks.
        """
        for index, sub in enumerate(self.subchannels):
            sub.recorder = recorder
            sub._rec_sub = base + index

    # ------------------------------------------------------------------
    # Traffic entry points
    # ------------------------------------------------------------------

    def access(self, addr: int) -> ActResult:
        """Activate the row a physical byte address decodes to.

        Requires a configured mapping; the decoded sub-channel and bank
        route the command, the column is ignored (closed-page policy:
        every access is an ACT).
        """
        if self.mapping is None:
            raise ValueError("ChannelConfig.mapping is required for access()")
        decoded = self.mapping.decode(addr)
        return self.activate(decoded.row, bank=decoded.bank, subchannel=decoded.subchannel)

    def activate(self, row: int, bank: int = 0, subchannel: int = 0) -> ActResult:
        """Issue one ACT through the channel command front-end."""
        sub = self.subchannels[subchannel]
        result = sub.activate(row, bank=bank, not_before=self._cmd_free)
        self._cmd_free = result.time + self._t_cmd_gap
        return result

    def activate_many(
        self, rows: List[int], bank: int = 0, subchannel: int = 0
    ) -> Optional[float]:
        """Issue a batch of ACTs to one (sub-channel, bank).

        The cross-sub-channel constraint applies at batch granularity
        (see module docstring); returns the last issue time.
        """
        sub = self.subchannels[subchannel]
        last = sub.activate_many(rows, bank=bank, not_before=self._cmd_free)
        if last is not None:
            self._cmd_free = last + self._t_cmd_gap
        return last

    def occupy(
        self, duration: float, bank: int = 0, subchannel: int = 0
    ) -> float:
        """Issue one non-ACT command (column access) through the front.

        The command holds a channel issue slot and the target bank for
        ``duration`` but activates nothing — see
        :meth:`~repro.sim.engine.SubchannelSim.occupy`. Returns the
        issue time.
        """
        sub = self.subchannels[subchannel]
        start = sub.occupy(duration, bank=bank, not_before=self._cmd_free)
        self._cmd_free = start + self._t_cmd_gap
        return start

    def would_defer(
        self, duration: float, bank: int = 0, subchannel: int = 0
    ) -> bool:
        """Whether a prospective command would cross a scheduled event
        — see :meth:`~repro.sim.engine.SubchannelSim.would_defer`.
        Pure peek; the channel command front stays untouched."""
        sub = self.subchannels[subchannel]
        return sub.would_defer(duration, bank=bank, not_before=self._cmd_free)

    # ------------------------------------------------------------------
    # Clock control
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Channel time: the furthest sub-channel clock."""
        return max(sub.now for sub in self.subchannels)

    def advance_to(self, time: float) -> None:
        """Advance every sub-channel's clock, retiring its events."""
        for sub in self.subchannels:
            sub.advance_to(time)

    def idle(self, duration: float) -> None:
        """Let wall-clock time pass on every sub-channel."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.advance_to(self.now + duration)

    def flush(self) -> None:
        """Retire unprocessed ALERT episodes on every sub-channel."""
        for sub in self.subchannels:
            sub.flush()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def subchannel(self) -> SubchannelSim:
        """The first sub-channel (single-sub-channel convenience)."""
        return self.subchannels[0]

    @property
    def timing(self):
        """DRAM timing shared by every sub-channel."""
        return self.config.sim.timing

    @property
    def bank(self):
        """First bank of the first sub-channel (attack convenience)."""
        return self.subchannels[0].bank

    @property
    def postpone_refs(self) -> bool:
        """Attacker-controlled REF postponement (all sub-channels)."""
        return all(sub.postpone_refs for sub in self.subchannels)

    @postpone_refs.setter
    def postpone_refs(self, value: bool) -> None:
        for sub in self.subchannels:
            sub.postpone_refs = value

    @property
    def total_acts(self) -> int:
        return sum(sub.total_acts for sub in self.subchannels)

    @property
    def alerts(self) -> int:
        return sum(sub.alerts for sub in self.subchannels)

    @property
    def refs(self) -> int:
        return sum(sub.refs for sub in self.subchannels)

    @property
    def proactive_count(self) -> int:
        return sum(sub.proactive_count for sub in self.subchannels)

    @property
    def reactive_count(self) -> int:
        return sum(sub.reactive_count for sub in self.subchannels)

    @property
    def mitigation_activations(self) -> int:
        return sum(
            bank.mitigation_activations
            for sub in self.subchannels
            for bank in sub.banks
        )

    def stats(self) -> Dict[str, float]:
        """Channel-level summary: sums over sub-channels, max danger."""
        return {
            "time_ns": self.now,
            "subchannels": float(len(self.subchannels)),
            "total_acts": float(self.total_acts),
            "refs": float(self.refs),
            "alerts": float(self.alerts),
            "proactive_mitigations": float(self.proactive_count),
            "reactive_mitigations": float(self.reactive_count),
            "max_danger": float(
                max(
                    bank.max_danger
                    for sub in self.subchannels
                    for bank in sub.banks
                )
            ),
        }
