"""Torrent-of-Staggered-ALERT (TSA) performance attack (paper §7.3).

The key insight: an ALERT gives *every* bank a mitigation opportunity,
so a synchronized multi-bank attack wastes ALERTs (each one cleans all
banks). TSA staggers the banks — while one bank fires its chain of
ALERTs, the other banks keep their primed rows *untouched* (and hence
untracked: MOAT's tracker was invalidated by the previous ALERT), so
every ALERT mitigates exactly one row. The result is a torrent of
back-to-back ALERTs: ~24% throughput loss at 4 banks and ~52% at 17
banks (the tFAW-limited bank count) in the paper's unit model; the
simulator reproduces the same shape.

Inter-ALERT filler activations target cold rows (count below ETH), so
they never enter any tracker.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.attacks.base import (
    AttackResult,
    AttackRunConfig,
    attack_rows,
    build_channel,
    require_single_subchannel,
    resolve_run,
    subscribed,
)
from repro.dram.refresh import CounterResetPolicy
from repro.mitigations.base import MitigationPolicy
from repro.mitigations.moat import MoatPolicy
from repro.mitigations.null import NullPolicy


def _run_tsa(
    policy_factory: Callable[[], MitigationPolicy],
    num_banks: int,
    ath: int,
    rows_per_set: int,
    cycles: int,
    run: AttackRunConfig,
) -> AttackResult:
    sim = build_channel(
        run,
        policy_factory,
        num_banks=num_banks,
        reset_policy=CounterResetPolicy.SAFE,
        trefi_per_mitigation=5,
        abo_level=1,
        track_danger=False,
    )
    rows = attack_rows(run, rows_per_set)
    # Cold filler rows, far from the primed sets (historically 32 000;
    # scaled into range for smaller banks).
    fillers = attack_rows(run, 8, start=min(32_000, run.rows_per_bank // 2))

    # Attacker-side count mirrors, reset by the mitigation listener.
    counts: Dict[int, List[int]] = {b: [0] * rows_per_set for b in range(num_banks)}

    def on_mitigation(bank: int, row: int, reactive: bool, time: float) -> None:
        if row in rows:
            counts[bank][rows.index(row)] = 0

    def act(bank: int, row_index: int) -> None:
        sim.activate(rows[row_index], bank=bank)
        counts[bank][row_index] += 1

    def prime(bank: int, target: int) -> None:
        for index in range(rows_per_set):
            while counts[bank][index] < target:
                act(bank, index)

    # The listener detaches when the attack finishes (or raises), so a
    # reused engine never keeps counting into this run's mirrors.
    with subscribed(sim, on_mitigation):
        for _ in range(cycles):
            # Prime all banks round-robin, one ACT per bank per step, so the
            # banks prime in parallel (bank-level parallelism: 320 ACTs per
            # bank complete in ~320 tRC of wall-clock, Figure 12).
            for _ in range(ath):
                for index in range(rows_per_set):
                    for bank in range(num_banks):
                        if counts[bank][index] < ath:
                            act(bank, index)
            # Staggered trigger phase: one bank at a time.
            for bank in range(num_banks):
                prime(bank, ath)  # top up rows stolen by earlier ALERTs
                for index in range(rows_per_set):
                    act(bank, index)  # crosses ATH -> ALERT
                    for filler in fillers[:3]:
                        sim.activate(filler, bank=bank)
        sim.flush()

    return AttackResult(
        name=f"tsa({num_banks} banks)",
        alerts=sim.alerts,
        elapsed_ns=sim.now,
        total_acts=sim.total_acts,
        subchannels=run.subchannels,
    )


def run_tsa(
    num_banks: int = 4,
    ath: int = 64,
    rows_per_set: int = 5,
    cycles: int = 4,
    rows_per_bank: Optional[int] = None,
    num_groups: Optional[int] = None,
    run: Optional[AttackRunConfig] = None,
) -> AttackResult:
    """Run TSA against MOAT and an unprotected baseline.

    Returns a result whose ``details['throughput_loss']`` is the
    fractional activation-throughput reduction versus the same pattern
    on DRAM that never ALERTs (Figure 12: ~24% at 4 banks, ~52% at 17).
    """
    run = resolve_run(run, rows_per_bank=rows_per_bank, num_refresh_groups=num_groups)
    require_single_subchannel(run, "tsa")
    protected = _run_tsa(
        lambda: MoatPolicy(ath=ath, level=1),
        num_banks,
        ath,
        rows_per_set,
        cycles,
        run,
    )
    baseline = _run_tsa(
        NullPolicy, num_banks, ath, rows_per_set, cycles, run
    )
    loss = 1.0 - (protected.throughput / baseline.throughput)
    protected.name = f"tsa({num_banks} banks, ATH={ath})"
    protected.details["throughput_loss"] = loss
    protected.details["normalized_throughput"] = 1.0 - loss
    return protected
