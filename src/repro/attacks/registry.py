"""Declarative attack specifications.

The security-evaluation front-end and the attack sweep runner describe
an attack as an :class:`AttackSpec` — a picklable ``(kind, params)``
pair mirroring :class:`~repro.mitigations.registry.PolicySpec` — so
attack runs can cross process boundaries, be hashed into cache keys,
and be serialized into ``BENCH_attack.json`` artifacts.

Registered kinds, their entry points, and the paper results they drive:

=============== =====================================================
``jailbreak``     :func:`~repro.attacks.jailbreak.run_deterministic_jailbreak`
                  (Figure 5, Section 3.2).
``jailbreak-randomized``
                  :func:`~repro.attacks.jailbreak.run_randomized_jailbreak_iteration`
                  (Figure 5, Section 3.3).
``ratchet``       :func:`~repro.attacks.ratchet.run_ratchet`
                  (Figure 10, Section 5).
``feinting``      :func:`~repro.attacks.feinting.run_feinting`
                  (Table 2, Section 2.5).
``postponement``  :func:`~repro.attacks.postponement.run_postponement_attack`
                  (Figure 16, Appendix B).
``tsa``           :func:`~repro.attacks.tsa.run_tsa`
                  (Figure 12, Section 7.3).
``kernel-single`` :func:`~repro.attacks.kernels.run_single_row_kernel`
                  (Figure 13, Section 7.2).
``kernel-multi``  :func:`~repro.attacks.kernels.run_multi_row_kernel`
                  (Figure 13, Section 7.2).
``trespass``      :func:`~repro.attacks.trespass.run_many_aggressor_attack`
                  (Section 2.4 motivation).
=============== =====================================================

Every runner takes the shared geometry from an
:class:`~repro.attacks.base.AttackRunConfig` (``run=`` keyword); spec
params map onto the runner's remaining keywords and are validated at
spec-construction time against the runner signature, so a typo'd
parameter fails before any simulation starts.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.attacks.base import AttackResult, AttackRunConfig
from repro.attacks.feinting import run_feinting
from repro.attacks.jailbreak import (
    run_deterministic_jailbreak,
    run_randomized_jailbreak_iteration,
)
from repro.attacks.kernels import run_multi_row_kernel, run_single_row_kernel
from repro.attacks.postponement import run_postponement_attack
from repro.attacks.ratchet import run_ratchet
from repro.attacks.trespass import run_many_aggressor_attack
from repro.attacks.tsa import run_tsa

AttackRunner = Callable[..., AttackResult]

#: Runner keywords that are not attack parameters: geometry comes from
#: the shared run config, and the legacy per-call overrides stay CLI/
#: test conveniences rather than sweepable axes.
_RESERVED_PARAMS = frozenset({"run", "rows_per_bank", "num_groups", "timing"})


@dataclass(frozen=True)
class _AttackKind:
    name: str
    runner: AttackRunner
    #: One-line description surfaced by ``repro attack list``.
    description: str
    #: Paper artifact the attack reproduces (figure/table/section).
    figure: str
    #: Whether the pattern adapts to defense state (per-ACT control)
    #: or is open-loop (batchable through ``activate_many``).
    adaptive: bool

    def param_names(self) -> Tuple[str, ...]:
        """Sweepable parameter names, from the runner's signature."""
        signature = inspect.signature(self.runner)
        return tuple(
            name
            for name in signature.parameters
            if name not in _RESERVED_PARAMS
        )

    def required_param_names(self) -> Tuple[str, ...]:
        """Parameters the runner has no default for (must be in specs)."""
        signature = inspect.signature(self.runner)
        return tuple(
            name
            for name, param in signature.parameters.items()
            if name not in _RESERVED_PARAMS
            and param.default is inspect.Parameter.empty
        )

    def sequence_param_names(self) -> Tuple[str, ...]:
        """Parameters whose runner annotation is a sequence type.

        Only these may carry tuple values in a spec; every other
        registered parameter is a scalar integer.
        """
        signature = inspect.signature(self.runner)
        return tuple(
            name
            for name, param in signature.parameters.items()
            if name not in _RESERVED_PARAMS
            and any(
                marker in str(param.annotation)
                for marker in ("List", "Sequence", "Tuple", "list", "tuple")
            )
        )


_REGISTRY: Dict[str, _AttackKind] = {
    kind.name: kind
    for kind in (
        _AttackKind(
            "jailbreak", run_deterministic_jailbreak,
            "deterministic queue-camping against Panopticon",
            "Figure 5", adaptive=True,
        ),
        _AttackKind(
            "jailbreak-randomized", run_randomized_jailbreak_iteration,
            "one fully-simulated randomized-Jailbreak iteration "
            "(counters chosen by the caller, so still deterministic)",
            "Figure 5", adaptive=True,
        ),
        _AttackKind(
            "ratchet", run_ratchet,
            "inter-ALERT ratcheting of a primed pool against MOAT",
            "Figure 10", adaptive=True,
        ),
        _AttackKind(
            "feinting", run_feinting,
            "harmonic-series feinting against ideal per-row counters",
            "Table 2", adaptive=True,
        ),
        _AttackKind(
            "postponement", run_postponement_attack,
            "REF-postponement window against drain-all Panopticon",
            "Figure 16", adaptive=True,
        ),
        _AttackKind(
            "tsa", run_tsa,
            "torrent of staggered ALERTs across banks vs MOAT",
            "Figure 12", adaptive=True,
        ),
        _AttackKind(
            "kernel-single", run_single_row_kernel,
            "(A)^N single-row throughput kernel vs MOAT",
            "Figure 13", adaptive=False,
        ),
        _AttackKind(
            "kernel-multi", run_multi_row_kernel,
            "(ABCDE)^N multi-row throughput kernel vs MOAT",
            "Figure 13", adaptive=False,
        ),
        _AttackKind(
            "trespass", run_many_aggressor_attack,
            "many-aggressor thrashing of a few-entry TRR tracker",
            "Section 2.4", adaptive=False,
        ),
    )
}


def attack_kinds() -> Tuple[str, ...]:
    """Registered attack kind names."""
    return tuple(_REGISTRY)


def attack_descriptions() -> Dict[str, Dict[str, object]]:
    """Registry-driven summary for CLI listings: ``{kind: {...}}``.

    The CLI renders this directly, so help output can never drift from
    the registry contents.
    """
    return {
        kind.name: {
            "description": kind.description,
            "figure": kind.figure,
            "adaptive": kind.adaptive,
            "params": ", ".join(kind.param_names()),
        }
        for kind in _REGISTRY.values()
    }


@dataclass(frozen=True)
class AttackSpec:
    """Declarative, hashable, picklable attack description.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so two
    specs with the same parameters compare (and hash) equal regardless
    of construction order. Use :meth:`of` to build one from kwargs.
    Parameter names are validated against the runner signature.
    """

    kind: str = "jailbreak"
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _REGISTRY:
            raise ValueError(
                f"unknown attack kind {self.kind!r}; "
                f"known: {', '.join(sorted(_REGISTRY))}"
            )
        allowed = set(_REGISTRY[self.kind].param_names())
        for name, _ in self.params:
            if name not in allowed:
                raise ValueError(
                    f"attack {self.kind!r} has no parameter {name!r}; "
                    f"known: {', '.join(sorted(allowed))}"
                )
        # Sequence values are only legal for parameters the runner
        # declares as sequences; a tuple for a scalar parameter would
        # otherwise surface as a TypeError deep in the attack.
        sequence_ok = set(_REGISTRY[self.kind].sequence_param_names())
        for name, value in self.params:
            if isinstance(value, (list, tuple)) and name not in sequence_ok:
                raise ValueError(
                    f"attack {self.kind!r} parameter {name!r} takes a "
                    "single value, not a sequence"
                )
        # Parameters the runner cannot default must be in the spec, so
        # an incomplete spec fails here (a clean ValueError) rather
        # than as a TypeError inside execute().
        provided = {name for name, _ in self.params}
        missing = [
            name
            for name in _REGISTRY[self.kind].required_param_names()
            if name not in provided
        ]
        if missing:
            raise ValueError(
                f"attack {self.kind!r} requires parameters: "
                f"{', '.join(missing)}"
            )
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    @staticmethod
    def of(kind: str, **params: Any) -> "AttackSpec":
        return AttackSpec(kind, tuple(sorted(params.items())))

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def adaptive(self) -> bool:
        return _REGISTRY[self.kind].adaptive

    @property
    def figure(self) -> str:
        return _REGISTRY[self.kind].figure

    def display_name(self) -> str:
        if not self.params:
            return self.kind
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}({inner})"

    def execute(self, run: Optional[AttackRunConfig] = None) -> AttackResult:
        """Run the attack through the shared ChannelSim front-end."""
        runner = _REGISTRY[self.kind].runner
        return runner(run=run or AttackRunConfig(), **self.param_dict())
