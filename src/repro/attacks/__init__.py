"""Attack patterns from the paper.

* :mod:`repro.attacks.jailbreak` — breaks Panopticon (Section 3).
* :mod:`repro.attacks.feinting` — bounds transparent per-row schemes
  (Section 2.5, Table 2).
* :mod:`repro.attacks.ratchet` — exploits delayed ALERTs (Section 5).
* :mod:`repro.attacks.kernels` — basic performance-attack kernels
  (Section 7.2, Figure 13).
* :mod:`repro.attacks.tsa` — Torrent-of-Staggered-ALERT (Section 7.3).
* :mod:`repro.attacks.postponement` — refresh-postponement attack on the
  drain-all Panopticon variant (Appendix B, Figure 16).
* :mod:`repro.attacks.trespass` — many-aggressor thrashing of low-cost
  SRAM trackers (Section 2.4 motivation).
* :mod:`repro.attacks.registry` — declarative :class:`AttackSpec`
  descriptions of the above, for the sweep/orchestration stack.

Every attack drives a :class:`~repro.sim.channel.ChannelSim` built from
a shared :class:`~repro.attacks.base.AttackRunConfig`; see
:mod:`repro.sim.attack_perf` for the ``run_attack`` front-end.
"""

from repro.attacks.base import (
    AttackResult,
    AttackRunConfig,
    MitigationLog,
    subscribed,
)
from repro.attacks.feinting import run_feinting
from repro.attacks.jailbreak import (
    run_deterministic_jailbreak,
    run_randomized_jailbreak_iteration,
    randomized_jailbreak_curve,
)
from repro.attacks.kernels import run_single_row_kernel, run_multi_row_kernel
from repro.attacks.postponement import run_postponement_attack
from repro.attacks.ratchet import run_ratchet, ratchet_growth_curve
from repro.attacks.registry import (
    AttackSpec,
    attack_descriptions,
    attack_kinds,
)
from repro.attacks.trespass import run_many_aggressor_attack
from repro.attacks.tsa import run_tsa

__all__ = [
    "AttackResult",
    "AttackRunConfig",
    "AttackSpec",
    "MitigationLog",
    "attack_descriptions",
    "attack_kinds",
    "subscribed",
    "run_feinting",
    "run_deterministic_jailbreak",
    "run_randomized_jailbreak_iteration",
    "randomized_jailbreak_curve",
    "run_single_row_kernel",
    "run_multi_row_kernel",
    "run_postponement_attack",
    "run_ratchet",
    "ratchet_growth_curve",
    "run_many_aggressor_attack",
    "run_tsa",
]
