"""Refresh-postponement attack on drain-all Panopticon (Appendix B).

The Drain-All-Entries-on-REF Panopticon variant empties its queue at
every REF, defeating Jailbreak-style camping. But DDR5 permits the
memory controller to postpone up to two REFs; with postponement the
REFs arrive in batches of three every three tREFI, opening a window of
about 201 activations between mitigation opportunities.

The attacker pre-charges a row's free-running counter to one below the
queueing threshold, lets a REF batch pass, and then hammers: the row
enters the queue on the first activation after the batch and absorbs
~200 more activations before the next batch can mitigate it — a total
of ~328 against a threshold of 128 (2.6x, Figure 16).
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import (
    AttackResult,
    AttackRunConfig,
    MitigationLog,
    attack_rows,
    build_channel,
    require_single_subchannel,
    resolve_run,
)
from repro.dram.refresh import CounterResetPolicy
from repro.mitigations.panopticon import PanopticonPolicy


def run_postponement_attack(
    threshold: int = 128,
    queue_entries: int = 8,
    rows_per_bank: Optional[int] = None,
    num_groups: Optional[int] = None,
    max_acts: int = 4096,
    run: Optional[AttackRunConfig] = None,
) -> AttackResult:
    """Break drain-all Panopticon with refresh postponement.

    Returns ``acts_on_attack_row`` — activations on row A before its
    first mitigation (~328 for the default configuration).
    """
    run = resolve_run(run, rows_per_bank=rows_per_bank, num_refresh_groups=num_groups)
    require_single_subchannel(run, "postponement")
    attack_row = attack_rows(run, 1)[0]
    sim = build_channel(
        run,
        lambda: PanopticonPolicy(
            queue_threshold=threshold,
            queue_entries=queue_entries,
            drain_all_on_ref=True,
        ),
        reset_policy=CounterResetPolicy.FREE_RUNNING,
        trefi_per_mitigation=1,  # drain-all repurposes every REF
        reset_counter_on_mitigation=False,
        max_postponed_refs=2,
    )
    with MitigationLog(sim) as log:
        sim.postpone_refs = True

        # Pre-charge the counter to threshold-1 before the first REF
        # batch — an open-loop burst, so it batches through the channel.
        sim.activate_many([attack_row] * (threshold - 1))
        acts = threshold - 1

        # Let the next mandatory batch of three REFs execute (REFs are
        # postponed twice, so batches land at every third tREFI boundary;
        # large thresholds may need several batch periods to pre-charge).
        batch_period = 3 * sim.timing.t_refi
        next_batch = (int(sim.now // batch_period) + 1) * batch_period
        sim.advance_to(next_batch + 3 * sim.timing.t_rfc + 1.0)

        # Hammer: the first activation crosses the threshold and enqueues
        # the row; it is mitigated only at the next REF batch.
        while not log.was_mitigated(attack_row) and acts < max_acts:
            sim.activate(attack_row)
            acts += 1
        sim.flush()

    return AttackResult(
        name="refresh-postponement-vs-drain-all",
        acts_on_attack_row=acts,
        max_danger=sim.bank.max_danger,
        alerts=sim.alerts,
        elapsed_ns=sim.now,
        total_acts=sim.total_acts,
        subchannels=run.subchannels,
        details={"threshold": threshold},
    )
