"""Many-aggressor thrashing of low-cost SRAM trackers (paper §2.4).

TRRespass-style attacks defeat few-entry trackers by using more
aggressor rows than the tracker has entries: a Misra-Gries table keeps
decrementing and never accumulates evidence against any single row, so
every aggressor sails past the Rowhammer threshold unmitigated. With
fewer aggressors than entries the same tracker catches them all — the
contrast that motivates per-row counting in DRAM.
"""

from __future__ import annotations

from repro.attacks.base import AttackResult, spaced_rows
from repro.dram.refresh import CounterResetPolicy
from repro.mitigations.trr import TrrTracker
from repro.sim.engine import SimConfig, SubchannelSim


def run_many_aggressor_attack(
    num_aggressors: int = 32,
    tracker_entries: int = 16,
    acts_per_aggressor: int = 512,
    mitigation_threshold: int = 32,
    rows_per_bank: int = 64 * 1024,
    num_groups: int = 8192,
) -> AttackResult:
    """Round-robin hammer ``num_aggressors`` rows against a TRR tracker.

    With ``num_aggressors > tracker_entries`` the tracker stays blind
    and ``max_danger`` approaches ``acts_per_aggressor``; with fewer
    aggressors the tracker mitigates them and exposure stays bounded.
    """
    config = SimConfig(
        rows_per_bank=rows_per_bank,
        num_refresh_groups=num_groups,
        reset_policy=CounterResetPolicy.FREE_RUNNING,
        trefi_per_mitigation=4,
        reset_counter_on_mitigation=True,
    )
    sim = SubchannelSim(
        config,
        lambda: TrrTracker(
            entries=tracker_entries, mitigation_threshold=mitigation_threshold
        ),
    )
    rows = spaced_rows(num_aggressors)
    for _ in range(acts_per_aggressor):
        for row in rows:
            sim.activate(row)
    sim.flush()

    return AttackResult(
        name=f"trrespass({num_aggressors} aggressors vs {tracker_entries} entries)",
        acts_on_attack_row=sim.bank.max_danger,
        max_danger=sim.bank.max_danger,
        alerts=sim.alerts,
        elapsed_ns=sim.now,
        total_acts=sim.total_acts,
        details={"aggressors": num_aggressors, "entries": tracker_entries},
    )
