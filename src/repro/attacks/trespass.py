"""Many-aggressor thrashing of low-cost SRAM trackers (paper §2.4).

TRRespass-style attacks defeat few-entry trackers by using more
aggressor rows than the tracker has entries: a Misra-Gries table keeps
decrementing and never accumulates evidence against any single row, so
every aggressor sails past the Rowhammer threshold unmitigated. With
fewer aggressors than entries the same tracker catches them all — the
contrast that motivates per-row counting in DRAM.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import (
    AttackResult,
    AttackRunConfig,
    attack_rows,
    build_channel,
    resolve_run,
)
from repro.dram.refresh import CounterResetPolicy
from repro.mitigations.trr import TrrTracker


def run_many_aggressor_attack(
    num_aggressors: int = 32,
    tracker_entries: int = 16,
    acts_per_aggressor: int = 512,
    mitigation_threshold: int = 32,
    rows_per_bank: Optional[int] = None,
    num_groups: Optional[int] = None,
    run: Optional[AttackRunConfig] = None,
) -> AttackResult:
    """Round-robin hammer ``num_aggressors`` rows against a TRR tracker.

    With ``num_aggressors > tracker_entries`` the tracker stays blind
    and ``max_danger`` approaches ``acts_per_aggressor``; with fewer
    aggressors the tracker mitigates them and exposure stays bounded.

    The pattern is open-loop (a fixed round-robin), so it issues through
    :meth:`~repro.sim.channel.ChannelSim.activate_many` one round at a
    time.
    """
    run = resolve_run(run, rows_per_bank=rows_per_bank, num_refresh_groups=num_groups)
    sim = build_channel(
        run,
        lambda: TrrTracker(
            entries=tracker_entries, mitigation_threshold=mitigation_threshold
        ),
        reset_policy=CounterResetPolicy.FREE_RUNNING,
        trefi_per_mitigation=4,
        reset_counter_on_mitigation=True,
    )
    rows = attack_rows(run, num_aggressors)
    for _ in range(acts_per_aggressor):
        # Open-loop round-robin, replicated on every sub-channel (one
        # round per sub-channel per step; each sub-channel's tracker
        # sees the full per-sub-channel pattern).
        for sub in range(run.subchannels):
            sim.activate_many(rows, subchannel=sub)
    sim.flush()

    return AttackResult(
        name=f"trrespass({num_aggressors} aggressors vs {tracker_entries} entries)",
        acts_on_attack_row=sim.bank.max_danger,
        max_danger=sim.bank.max_danger,
        alerts=sim.alerts,
        elapsed_ns=sim.now,
        total_acts=sim.total_acts,
        subchannels=run.subchannels,
        details={"aggressors": num_aggressors, "entries": tracker_entries},
    )
