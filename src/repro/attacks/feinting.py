"""Feinting attack against transparent per-row-counter mitigation.

The feinting strategy (ProTRR, used by the paper for Table 2): with
``m`` mitigation periods remaining and ``n`` activations available per
period, spread each period's activations evenly over the surviving
candidate rows. The defender mitigates the maximum-count row each
period; the attacker abandons it. The last survivor accumulates
``n * H(m)`` activations — far above the counter threshold, which is
why a purely transparent scheme cannot tolerate a low T_RH.

The simulation places candidate rows immediately after the refresh
pointer's starting position so the refresh wave (which would clear
victim exposure) passes them only at the very end of the window.
"""

from __future__ import annotations

from typing import List, Optional

from repro.attacks.base import (
    AttackResult,
    AttackRunConfig,
    MitigationLog,
    build_channel,
    require_single_subchannel,
    resolve_run,
)
from repro.dram.refresh import CounterResetPolicy
from repro.dram.timing import DramTiming
from repro.mitigations.ideal_perrow import IdealPerRowPolicy


def run_feinting(
    trefi_per_mitigation: int = 4,
    periods: Optional[int] = None,
    timing: Optional[DramTiming] = None,
    rows_per_bank: Optional[int] = None,
    num_groups: Optional[int] = None,
    row_spacing: int = 6,
    run: Optional[AttackRunConfig] = None,
) -> AttackResult:
    """Run the feinting attack against :class:`IdealPerRowPolicy`.

    Args:
        trefi_per_mitigation: Mitigation rate ``k`` (Table 2 sweeps 1-5).
        periods: Number of mitigation periods to attack over; defaults
            to one full refresh window (8192 / k). Smaller values give a
            fast, scaled run whose bound is ``n * H(periods)``.

    Returns an :class:`AttackResult`; ``acts_on_attack_row`` is the
    count accumulated by the surviving row (compare with
    :func:`repro.analysis.feinting_bound`).
    """
    run = resolve_run(
        run,
        rows_per_bank=rows_per_bank,
        num_refresh_groups=num_groups,
        timing=timing,
    )
    require_single_subchannel(run, "feinting")
    timing = run.timing
    if periods is None:
        periods = timing.refs_per_refw // trefi_per_mitigation
    if periods <= 0:
        raise ValueError("periods must be positive")

    sim = build_channel(
        run,
        IdealPerRowPolicy,
        reset_policy=CounterResetPolicy.FREE_RUNNING,
        trefi_per_mitigation=trefi_per_mitigation,
        reset_counter_on_mitigation=True,
    )
    with MitigationLog(sim) as log:
        acts_per_period = timing.acts_per_trefi * trefi_per_mitigation
        # Candidates sit just past the first refresh groups; the wave reaches
        # them near the end of the attack. Spaced so victims never overlap.
        rows_per_group = run.rows_per_bank // run.num_refresh_groups
        first_row = rows_per_group * 2
        candidates: List[int] = [
            first_row + i * row_spacing for i in range(periods)
        ]
        if candidates[-1] >= run.rows_per_bank:
            raise ValueError(
                "bank too small for the requested periods/spacing; "
                "increase rows_per_bank or reduce periods"
            )

        issued = {row: 0 for row in candidates}
        survivors = list(candidates)
        trefi = timing.t_refi
        period_ns = trefi_per_mitigation * trefi
        cursor = 0  # rotates the remainder allocation across survivors

        for remaining in range(periods, 0, -1):
            period_start = sim.now
            share, extra = divmod(acts_per_period, remaining)
            # Even spread with a rotating remainder: over time every
            # survivor receives the fractional share n/r, which is what the
            # harmonic bound assumes. Without rotation the back of the pool
            # starves whenever n < r (e.g. rate k=1: 67 ACTs, 8192 rows).
            for index in range(remaining):
                row = survivors[(cursor + index) % remaining]
                count = share + (1 if index < extra else 0)
                for _ in range(count):
                    sim.activate(row)
                    issued[row] += 1
            cursor += extra
            # Let the period elapse (mitigation fires at its boundary).
            sim.advance_to(period_start + period_ns)
            # Drop whichever candidate the defender mitigated.
            survivors = [row for row in survivors if not log.was_mitigated(row)]
            if not survivors:
                break

        sim.flush()
        survivors_left = len(survivors)

    # The last survivor receives its full allocation before the final
    # boundary mitigates it; counts only accumulate while a row is
    # alive, so the maximum issued count is the survivor's total.
    survivor_acts = max(issued.values(), default=0)
    return AttackResult(
        name=f"feinting(k={trefi_per_mitigation})",
        acts_on_attack_row=survivor_acts,
        max_danger=sim.bank.max_danger,
        alerts=sim.alerts,
        elapsed_ns=sim.now,
        total_acts=sim.total_acts,
        subchannels=run.subchannels,
        details={"periods": periods, "survivors": survivors_left},
    )
