"""Basic performance-attack kernels (paper Section 7.2, Figure 13).

These patterns measure *throughput* rather than security: an attacker
repeatedly drives rows to ATH so ALERTs fire continuously, and we
compare achieved activations-per-nanosecond against the same pattern on
an unprotected bank. For MOAT with ATH=64 both kernels lose ~10%.

The patterns are open-loop (the row sequence never depends on the
defense state), so they batch through
:meth:`~repro.sim.channel.ChannelSim.activate_many` with dense PRAC
counters — the engine's fast path — and geometry comes from the shared
:class:`~repro.attacks.base.AttackRunConfig` instead of the hardcoded
dimensions this module used to carry.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.attacks.base import (
    AttackResult,
    AttackRunConfig,
    attack_rows,
    build_channel,
    resolve_run,
)
from repro.dram.refresh import CounterResetPolicy
from repro.mitigations.base import MitigationPolicy
from repro.mitigations.moat import MoatPolicy
from repro.mitigations.null import NullPolicy

#: Batch size for the open-loop pattern: large enough to amortize the
#: per-batch setup, small enough to keep peak memory flat.
_BATCH = 4096


def _run_pattern(
    policy_factory: Callable[[], MitigationPolicy],
    rows: List[int],
    total_acts: int,
    run: AttackRunConfig,
    abo_level: int = 1,
) -> AttackResult:
    sim = build_channel(
        run,
        policy_factory,
        reset_policy=CounterResetPolicy.SAFE,
        trefi_per_mitigation=5,
        abo_level=abo_level,
        track_danger=False,  # throughput measurement only
        dense_counters=True,
    )
    issued = 0
    index = 0
    n_rows = len(rows)
    while issued < total_acts:
        count = min(_BATCH, total_acts - issued)
        batch = [rows[(index + i) % n_rows] for i in range(count)]
        # The open-loop pattern replicates on every sub-channel: the
        # attacker hammers the whole channel, and the batches contend
        # for the shared command front-end. ``total_acts`` is the
        # per-sub-channel budget, so one sub-channel reproduces the
        # historical single-engine run exactly.
        for sub in range(run.subchannels):
            sim.activate_many(batch, subchannel=sub)
        issued += count
        index += count
    sim.flush()
    return AttackResult(
        name="kernel",
        alerts=sim.alerts,
        elapsed_ns=sim.now,
        total_acts=sim.total_acts,
        subchannels=run.subchannels,
    )


def _kernel(
    rows: int,
    ath: int,
    total_acts: int,
    abo_level: int,
    run: AttackRunConfig,
) -> AttackResult:
    addresses = attack_rows(run, rows)
    protected = _run_pattern(
        lambda: MoatPolicy(ath=ath, level=abo_level),
        addresses,
        total_acts,
        run,
        abo_level=abo_level,
    )
    baseline = _run_pattern(
        NullPolicy, addresses, total_acts, run, abo_level=abo_level
    )
    loss = 1.0 - (protected.throughput / baseline.throughput)
    result = AttackResult(
        name=f"kernel-{rows}row(ATH={ath})",
        alerts=protected.alerts,
        elapsed_ns=protected.elapsed_ns,
        total_acts=protected.total_acts,
        subchannels=run.subchannels,
        details={
            "throughput_loss": loss,
            "normalized_throughput": protected.throughput / baseline.throughput,
            "baseline_ns": baseline.elapsed_ns,
        },
    )
    return result


def run_single_row_kernel(
    ath: int = 64,
    total_acts: int = 20_000,
    abo_level: int = 1,
    run: Optional[AttackRunConfig] = None,
) -> AttackResult:
    """The (A)^N pattern: one row hammered continuously.

    Every ATH+1 activations trigger one ALERT; the ~10% throughput loss
    is the RFM stall amortized over the trigger activations.
    """
    return _kernel(1, ath, total_acts, abo_level, resolve_run(run))


def run_multi_row_kernel(
    rows: int = 5,
    ath: int = 64,
    total_acts: int = 20_000,
    abo_level: int = 1,
    run: Optional[AttackRunConfig] = None,
) -> AttackResult:
    """The (ABCDE)^N pattern: several rows cycled continuously.

    The loss matches the single-row kernel (~10%): each row still costs
    one ALERT per ATH+1 of its own activations.
    """
    return _kernel(rows, ath, total_acts, abo_level, resolve_run(run))
