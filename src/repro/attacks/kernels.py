"""Basic performance-attack kernels (paper Section 7.2, Figure 13).

These patterns measure *throughput* rather than security: an attacker
repeatedly drives rows to ATH so ALERTs fire continuously, and we
compare achieved activations-per-nanosecond against the same pattern on
an unprotected bank. For MOAT with ATH=64 both kernels lose ~10%.
"""

from __future__ import annotations

from typing import Callable, List

from repro.attacks.base import AttackResult, spaced_rows
from repro.dram.refresh import CounterResetPolicy
from repro.mitigations.base import MitigationPolicy
from repro.mitigations.moat import MoatPolicy
from repro.mitigations.null import NullPolicy
from repro.sim.engine import SimConfig, SubchannelSim


def _run_pattern(
    policy_factory: Callable[[], MitigationPolicy],
    rows: List[int],
    total_acts: int,
    abo_level: int = 1,
    rows_per_bank: int = 64 * 1024,
    num_groups: int = 8192,
) -> AttackResult:
    config = SimConfig(
        rows_per_bank=rows_per_bank,
        num_refresh_groups=num_groups,
        reset_policy=CounterResetPolicy.SAFE,
        trefi_per_mitigation=5,
        abo_level=abo_level,
        track_danger=False,  # throughput measurement only
    )
    sim = SubchannelSim(config, policy_factory)
    issued = 0
    index = 0
    while issued < total_acts:
        sim.activate(rows[index % len(rows)])
        issued += 1
        index += 1
    sim.flush()
    return AttackResult(
        name="kernel",
        alerts=sim.alerts,
        elapsed_ns=sim.now,
        total_acts=sim.total_acts,
    )


def _kernel(
    rows: int,
    ath: int,
    total_acts: int,
    abo_level: int,
) -> AttackResult:
    addresses = spaced_rows(rows)
    protected = _run_pattern(
        lambda: MoatPolicy(ath=ath, level=abo_level),
        addresses,
        total_acts,
        abo_level=abo_level,
    )
    baseline = _run_pattern(NullPolicy, addresses, total_acts, abo_level=abo_level)
    loss = 1.0 - (protected.throughput / baseline.throughput)
    result = AttackResult(
        name=f"kernel-{rows}row(ATH={ath})",
        alerts=protected.alerts,
        elapsed_ns=protected.elapsed_ns,
        total_acts=protected.total_acts,
        details={
            "throughput_loss": loss,
            "normalized_throughput": protected.throughput / baseline.throughput,
            "baseline_ns": baseline.elapsed_ns,
        },
    )
    return result


def run_single_row_kernel(
    ath: int = 64, total_acts: int = 20_000, abo_level: int = 1
) -> AttackResult:
    """The (A)^N pattern: one row hammered continuously.

    Every ATH+1 activations trigger one ALERT; the ~10% throughput loss
    is the RFM stall amortized over the trigger activations.
    """
    return _kernel(1, ath, total_acts, abo_level)


def run_multi_row_kernel(
    rows: int = 5, ath: int = 64, total_acts: int = 20_000, abo_level: int = 1
) -> AttackResult:
    """The (ABCDE)^N pattern: several rows cycled continuously.

    The loss matches the single-row kernel (~10%): each row still costs
    one ALERT per ATH+1 of its own activations.
    """
    return _kernel(rows, ath, total_acts, abo_level)
