"""Jailbreak: breaking Panopticon's queue (paper Section 3).

Deterministic Jailbreak (Section 3.2): select 8 rows (A..H), activate
each 128 times in a circular pattern so all of them enter the 8-entry
FIFO queue within the same tREFI, with H entering last. Then hammer H
at 32 activations per tREFI — exactly one queue (re-)insertion per
4-tREFI mitigation period, so the queue never overflows and no ALERT is
raised. H is serviced only after the 7 earlier entries (FIFO), accruing
8 x 128 = 1024 activations while enqueued: 1152 total against a
queueing threshold of 128 (9x).

Randomized Jailbreak (Section 3.3): with counters randomized at reset,
an iteration succeeds when all 8 decoy rows are "heavy-weight" (their
counter crosses a multiple of 128 within the 32 priming activations,
i.e. ``counter mod 128 >= 96`` — probability 1/4 each, 2^-16 for all
eight; the paper describes the same 1/4-probability class via the
value range 196-255). Each iteration takes ~256 us, so the expected
time to success is ~16 seconds, and within 5 minutes the attacker
inflicts ~1145 activations (Figure 5).

The curve of Figure 5 is produced by sampling iteration outcomes with
the closed-form queue dynamics (validated against the full simulator by
:func:`run_randomized_jailbreak_iteration` and the test-suite).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.attacks.base import (
    AttackResult,
    AttackRunConfig,
    MitigationLog,
    attack_rows,
    build_channel,
    require_single_subchannel,
    resolve_run,
)
from repro.dram.refresh import CounterResetPolicy
from repro.mitigations.panopticon import PanopticonPolicy
from repro.sim.channel import ChannelSim


def _panopticon_sim(
    threshold: int,
    queue_entries: int,
    run: AttackRunConfig,
    initial_counter: Optional[Callable[[int], int]] = None,
) -> ChannelSim:
    return build_channel(
        run,
        lambda: PanopticonPolicy(
            queue_threshold=threshold, queue_entries=queue_entries
        ),
        reset_policy=CounterResetPolicy.FREE_RUNNING,
        trefi_per_mitigation=4,  # Panopticon: 4 victim rows, no reset ACT
        reset_counter_on_mitigation=False,
        initial_counter=initial_counter,
    )


def run_deterministic_jailbreak(
    threshold: int = 128,
    queue_entries: int = 8,
    rows_per_bank: Optional[int] = None,
    num_groups: Optional[int] = None,
    acts_per_trefi_phase2: int = 32,
    max_periods: int = 64,
    run: Optional[AttackRunConfig] = None,
) -> AttackResult:
    """Execute the deterministic Jailbreak pattern against Panopticon.

    Returns an :class:`AttackResult` whose ``acts_on_attack_row`` is the
    number of activations row H received before its first mitigation
    (1152 for the paper's configuration).
    """
    run = resolve_run(run, rows_per_bank=rows_per_bank, num_refresh_groups=num_groups)
    require_single_subchannel(run, "jailbreak")
    rows = attack_rows(run, queue_entries)
    sim = _panopticon_sim(threshold, queue_entries, run)
    with MitigationLog(sim) as log:
        attack_row = rows[-1]

        # Phase 1: circular activation fills the queue, H last. The final
        # circular round (where all 8 rows cross the threshold and enter the
        # queue) is aligned to land just after a mitigation-period boundary,
        # so every enqueued entry waits full periods before service — the
        # paper's accounting of 8 x 128 activations while H is enqueued.
        acts_on_h = 0
        period_ns = 4 * sim.timing.t_refi
        for _ in range(threshold - 1):
            for row in rows:
                sim.activate(row)
                if row == attack_row:
                    acts_on_h += 1
        boundary = (int(sim.now // period_ns) + 1) * period_ns
        sim.advance_to(boundary + sim.timing.t_rfc)
        for row in rows:
            sim.activate(row)
            if row == attack_row:
                acts_on_h += 1

        # Phase 2: hammer H at a rate of one queue insertion per mitigation
        # period, starting one tREFI after the fill so each re-crossing of
        # the threshold lands just after that period's FIFO service (the
        # service-then-insert interleave that keeps the queue at capacity
        # without overflowing). Stop at H's first mitigation.
        trefi = sim.timing.t_refi
        sim.advance_to(boundary + period_ns / 4.0 + sim.timing.t_rfc)
        for _ in range(max_periods * 8):
            interval_start = sim.now
            for _ in range(acts_per_trefi_phase2):
                sim.activate(attack_row)
                acts_on_h += 1
                if log.was_mitigated(attack_row):
                    break
            if log.was_mitigated(attack_row):
                break
            sim.advance_to(interval_start + trefi)
        sim.flush()

    return AttackResult(
        name="jailbreak-deterministic",
        acts_on_attack_row=acts_on_h,
        max_danger=sim.bank.max_danger,
        alerts=sim.alerts,
        elapsed_ns=sim.now,
        total_acts=sim.total_acts,
        subchannels=run.subchannels,
        details={"threshold": threshold, "queue_entries": queue_entries},
    )


def is_heavy_weight(counter: int, threshold: int = 128, prime_acts: int = 32) -> bool:
    """Whether a row with this initial counter crosses a multiple of the
    queueing threshold within ``prime_acts`` activations.

    This is the functional definition of the paper's "heavy-weight" row;
    for threshold 128 and 32 priming activations the probability over a
    uniform 0-255 counter is 1/4 (Section 3.3).
    """
    remainder = counter % threshold
    return remainder >= threshold - prime_acts


def run_randomized_jailbreak_iteration(
    initial_counters: List[int],
    attack_row_counter: int,
    threshold: int = 128,
    queue_entries: int = 8,
    prime_acts: int = 32,
    rows_per_bank: Optional[int] = None,
    num_groups: Optional[int] = None,
    max_attack_acts: int = 4096,
    run: Optional[AttackRunConfig] = None,
) -> AttackResult:
    """Fully simulate ONE iteration of the randomized Jailbreak.

    Args:
        initial_counters: Initial counter values of the 8 decoy rows.
        attack_row_counter: Initial counter value of the attack row X.

    The attacker primes each decoy with ``prime_acts`` circular
    activations, then hammers X (paced at 32 per tREFI) until X is
    mitigated. Successful iterations (all decoys heavy-weight) yield
    ~9x the queueing threshold on X.
    """
    if len(initial_counters) != queue_entries:
        raise ValueError("need one initial counter per decoy row")
    run = resolve_run(run, rows_per_bank=rows_per_bank, num_refresh_groups=num_groups)
    require_single_subchannel(run, "jailbreak (randomized)")
    rows = attack_rows(run, queue_entries + 1)
    decoys, attack_row = rows[:-1], rows[-1]
    values = dict(zip(decoys, initial_counters))
    values[attack_row] = attack_row_counter

    sim = _panopticon_sim(
        threshold,
        queue_entries,
        run,
        initial_counter=lambda row: values.get(row, 0),
    )
    with MitigationLog(sim) as log:
        # Phase 1: 32 circular activations per decoy.
        for _ in range(prime_acts):
            for row in decoys:
                sim.activate(row)

        # Wait one mitigation period so at least one enqueued decoy is
        # serviced before X can cross — otherwise X's insertion into a full
        # queue overflows and raises an ALERT, wasting the iteration.
        period = 4 * sim.timing.t_refi
        sim.advance_to(sim.now + period)

        # Phase 2: hammer X, paced to one insertion per mitigation period.
        acts_on_x = 0
        trefi = sim.timing.t_refi
        while acts_on_x < max_attack_acts and not log.was_mitigated(attack_row):
            interval_start = sim.now
            for _ in range(prime_acts):
                sim.activate(attack_row)
                acts_on_x += 1
                if log.was_mitigated(attack_row):
                    break
            sim.advance_to(interval_start + trefi)
        sim.flush()

    heavy = sum(
        1 for counter in initial_counters if is_heavy_weight(counter, threshold, prime_acts)
    )
    return AttackResult(
        name="jailbreak-randomized-iteration",
        acts_on_attack_row=acts_on_x,
        max_danger=sim.bank.max_danger,
        alerts=sim.alerts,
        elapsed_ns=sim.now,
        total_acts=sim.total_acts,
        subchannels=run.subchannels,
        details={"heavy_decoys": heavy},
    )


def iteration_acts_closed_form(
    heavy_decoys: int,
    attack_row_counter: int,
    threshold: int = 128,
    queue_entries: int = 8,
) -> int:
    """Closed-form activations achieved on X in one iteration.

    X needs ``threshold - (counter mod threshold)`` activations to
    enter the queue. By then one heavy decoy has been serviced (the
    attacker idles one mitigation period after priming precisely to
    guarantee this), so X waits behind ``max(0, h - 1)`` entries plus
    its own service period, receiving ``threshold`` activations per
    period at the paced rate. Validated against the full simulator in
    the test-suite.
    """
    to_enqueue = threshold - (attack_row_counter % threshold)
    ahead = max(0, min(heavy_decoys, queue_entries) - 1)
    return to_enqueue + threshold * (ahead + 1)


def randomized_jailbreak_curve(
    iteration_counts: List[int],
    threshold: int = 128,
    queue_entries: int = 8,
    prime_acts: int = 32,
    seed: int = 0,
) -> Dict[int, int]:
    """Figure 5 data: best activations-on-attack-row after N iterations.

    Samples iteration outcomes (decoy counters uniform over 0-255, the
    probability-relevant quantity) and applies the closed-form queue
    dynamics per iteration. Returns ``{iterations: best_acts}``.
    """
    rng = random.Random(seed)
    results: Dict[int, int] = {}
    best = 0
    done = 0
    counter_range = 2 * threshold
    for target in sorted(iteration_counts):
        while done < target:
            decoys = [rng.randrange(counter_range) for _ in range(queue_entries)]
            attack_counter = rng.randrange(counter_range)
            heavy = sum(
                1 for c in decoys if is_heavy_weight(c, threshold, prime_acts)
            )
            acts = iteration_acts_closed_form(
                heavy, attack_counter, threshold, queue_entries
            )
            best = max(best, acts)
            done += 1
        results[target] = best
    return results
