"""Ratchet attack: exploiting inter-ALERT activations (paper Section 5).

MOAT guarantees that a row crossing ATH is mitigated at the next ALERT,
but JEDEC permits activity between consecutive ALERTs: 3 activations in
the 180 ns pre-RFM window plus ``L`` mandatory activations after the
RFMs. The Ratchet attack primes a pool of rows to ATH and then forces a
chain of ALERTs, spending every permitted inter-ALERT activation on the
rows that have not yet been mitigated — ratcheting the survivors above
ATH. The larger the pool, the higher the final count on the last
surviving row.

:func:`run_ratchet` executes the attack in the full simulator with a
greedy spreading strategy (even water-filling over survivors, avoiding
making the intended survivor the tracker maximum until the end).
:func:`ratchet_growth_curve` sweeps pool sizes to expose the
logarithmic growth that Appendix A's analytical model
(:mod:`repro.analysis.ratchet_model`) bounds. The simulated attack is
one concrete strategy, so its counts are a *lower* bound on the
analytical Safe-TRH (which MOAT uses for provisioning).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.attacks.base import (
    AttackResult,
    AttackRunConfig,
    MitigationLog,
    attack_rows,
    build_channel,
    require_single_subchannel,
    resolve_run,
)
from repro.dram.refresh import CounterResetPolicy
from repro.mitigations.moat import MoatPolicy
from repro.sim.channel import ChannelSim


def _moat_sim(
    ath: int,
    abo_level: int,
    tracker_level: int,
    run: AttackRunConfig,
) -> ChannelSim:
    return build_channel(
        run,
        lambda: MoatPolicy(ath=ath, level=tracker_level),
        reset_policy=CounterResetPolicy.SAFE,
        trefi_per_mitigation=5,
        abo_level=abo_level,
        reset_counter_on_mitigation=True,
    )


def run_ratchet(
    ath: int = 64,
    pool_size: int = 64,
    abo_level: int = 1,
    tracker_level: Optional[int] = None,
    rows_per_bank: Optional[int] = None,
    num_groups: Optional[int] = None,
    max_alerts: int = 100_000,
    run: Optional[AttackRunConfig] = None,
) -> AttackResult:
    """Execute the Ratchet attack against MOAT.

    Args:
        ath: MOAT's ALERT threshold.
        pool_size: Number of primed candidate rows (N in Appendix A).
        abo_level: MR71 ABO level (RFMs per ALERT, inter-ALERT ACTs).
        tracker_level: MOAT tracker entries; defaults to ``abo_level``
            (the generalized design). Pass 1 with ``abo_level=4`` to
            model the footnote's misconfigured single-entry case.

    ``acts_on_attack_row`` is the activation count of the last row at
    the moment it is finally mitigated — the quantity Figure 10 bounds.
    """
    if tracker_level is None:
        tracker_level = abo_level
    run = resolve_run(run, rows_per_bank=rows_per_bank, num_refresh_groups=num_groups)
    require_single_subchannel(run, "ratchet")
    pool = attack_rows(run, pool_size)
    sim = _moat_sim(ath, abo_level, tracker_level, run)
    with MitigationLog(sim) as log:

        # --- Priming phase: bring every pool row to exactly ATH. ----------
        # Proactive mitigation may steal primed rows (they exceed ETH); the
        # attacker simply re-primes, which Appendix A's F(N) approximation
        # absorbs. We track our own issued counts and top up as needed.
        counts = {row: 0 for row in pool}

        def mitigations(row: int) -> int:
            return log.times_mitigated(row)

        baseline_mitigations = {row: 0 for row in pool}

        def current_count(row: int) -> int:
            # A mitigation resets the row's counter; our mirror restarts.
            return counts[row]

        def note_acts(row: int, n: int) -> None:
            for _ in range(n):
                sim.activate(row)
                counts[row] += 1
                if mitigations(row) != baseline_mitigations[row]:
                    baseline_mitigations[row] = mitigations(row)
                    counts[row] = 0

        stable = False
        for _ in range(64):  # priming rounds; converges in a few
            stable = True
            for row in pool:
                deficit = ath - current_count(row)
                if deficit > 0:
                    stable = False
                    note_acts(row, deficit)
            if stable:
                break

        # --- ALERT chain: ratchet the survivors. ---------------------------
        # Every activation now pushes a row above ATH. The engine fires an
        # ALERT as soon as the inter-ALERT constraints allow; MOAT mitigates
        # the tracked maximum. The attacker spreads activations evenly over
        # the survivors with the *lowest* counts first, so the intended
        # survivor never becomes the tracker maximum prematurely.
        alerts_before = sim.alerts
        chain_base = {row: mitigations(row) for row in pool}

        def alive(row: int) -> bool:
            return mitigations(row) == chain_base[row]

        survivors = list(pool)
        while len(survivors) > 1 and sim.alerts - alerts_before < max_alerts:
            target = min(survivors, key=lambda r: counts[r])
            note_acts(target, 1)
            survivors = [row for row in survivors if alive(row)]

        # Final row: hammer it until its own ALERT takes it out.
        if survivors:
            last = survivors[0]
            while alive(last) and sim.alerts - alerts_before < max_alerts:
                note_acts(last, 1)
        sim.flush()

    # The bank's danger accounting is the authoritative metric: the
    # attacker-side mirror can drift when the periodic refresh wave
    # resets counters mid-attack (long priming phases sweep the pool).
    return AttackResult(
        name=f"ratchet(ATH={ath},L{abo_level},N={pool_size})",
        acts_on_attack_row=sim.bank.max_danger,
        max_danger=sim.bank.max_danger,
        alerts=sim.alerts,
        elapsed_ns=sim.now,
        total_acts=sim.total_acts,
        subchannels=run.subchannels,
        details={"pool": pool_size},
    )


def ratchet_growth_curve(
    ath: int = 64,
    pool_sizes: Optional[List[int]] = None,
    abo_level: int = 1,
    run: Optional[AttackRunConfig] = None,
) -> Dict[int, int]:
    """Max activations on the attack row vs pool size (log growth)."""
    pool_sizes = pool_sizes or [4, 16, 64, 256]
    return {
        n: run_ratchet(
            ath=ath,
            pool_size=n,
            abo_level=abo_level,
            run=run,
        ).acts_on_attack_row
        for n in pool_sizes
    }
