"""Shared plumbing for attack implementations.

Attacks drive a :class:`~repro.sim.channel.ChannelSim` (the same
channel → sub-channel → bank hierarchy the performance front-end uses)
and report an :class:`AttackResult`. Adaptive attacks exploit the
threat model's full knowledge of the defense state (Section 2.1)
through per-ACT control; open-loop patterns batch through
:meth:`~repro.sim.channel.ChannelSim.activate_many`. At one sub-channel
the channel is bit-identical to a bare
:class:`~repro.sim.engine.SubchannelSim`, which is what keeps the
pre-port attack results pinned exactly
(``tests/attacks/test_attack_port_identity.py``).

Geometry (rows per bank, refresh groups, sub-channel count, timing)
comes from one shared :class:`AttackRunConfig` — the attack modules no
longer hardcode their own — and :func:`build_channel` turns it plus the
attack's semantic knobs (reset policy, mitigation cadence, ABO level)
into a ready :class:`~repro.sim.channel.ChannelSim`.

A :class:`MitigationLog` subscribes to the engine's mitigation events
so attacks can detect exactly when their target row was serviced. Logs
(and raw listeners via :func:`subscribed`) detach cleanly, so a reused
engine never accumulates stale listeners across attacks.
"""

from __future__ import annotations

import contextlib
import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.dram.timing import DramTiming, DDR5_PRAC_TIMING
from repro.sim.channel import ChannelConfig, ChannelSim
from repro.sim.engine import MitigationListener, SimConfig, SubchannelSim

#: Anything an attack can drive: the full channel or a bare engine.
AttackSim = Union[ChannelSim, SubchannelSim]


@dataclass(frozen=True)
class AttackRunConfig:
    """Shared run-level configuration of one attack execution.

    The single source of truth for simulation geometry: every attack
    derives its DRAM dimensions from here (the paper's Table 3 system
    by default) instead of hardcoding them, so the registry, the sweep
    presets, and the perf front-end can never silently drift apart.

    Args:
        rows_per_bank: Rows per simulated bank.
        num_refresh_groups: Refresh groups per tREFW window.
        subchannels: Sub-channels in the simulated channel. ``1``
            reproduces the pre-port single-engine runs bit-for-bit.
        seed: Reserved for stochastic attacks; every *registered*
            attack is deterministic today, so a non-default seed
            changes point identity without changing results (the sweep
            layer keeps ``seed=0`` out of keys/hashes for exactly this
            reason).
        timing: DRAM timing parameters.
    """

    rows_per_bank: int = 64 * 1024
    num_refresh_groups: int = 8192
    subchannels: int = 1
    seed: int = 0
    timing: DramTiming = field(default_factory=lambda: DDR5_PRAC_TIMING)

    def __post_init__(self) -> None:
        if self.subchannels < 1:
            raise ValueError("subchannels must be at least 1")
        if self.rows_per_bank < self.num_refresh_groups:
            raise ValueError("rows_per_bank must cover the refresh groups")

    def replaced(self, **overrides: Any) -> "AttackRunConfig":
        """Copy with the non-``None`` overrides applied.

        Lets attack entry points keep their legacy geometry keywords
        (``rows_per_bank=...``) as thin overrides of the shared config.
        """
        changes = {k: v for k, v in overrides.items() if v is not None}
        return dataclasses.replace(self, **changes) if changes else self


def resolve_run(
    run: Optional[AttackRunConfig] = None,
    **overrides: Any,
) -> AttackRunConfig:
    """The run config with legacy per-call geometry overrides applied."""
    return (run or AttackRunConfig()).replaced(**overrides)


def build_channel(
    run: AttackRunConfig,
    policy_factory,
    **sim_overrides: Any,
) -> ChannelSim:
    """Build the attack's :class:`ChannelSim` from the shared config.

    ``sim_overrides`` are the attack-semantic :class:`SimConfig` fields
    (reset policy, proactive cadence, ABO level, danger tracking...);
    geometry and timing always come from ``run``.
    """
    sim_config = SimConfig(
        timing=run.timing,
        rows_per_bank=run.rows_per_bank,
        num_refresh_groups=run.num_refresh_groups,
        **sim_overrides,
    )
    return ChannelSim(
        ChannelConfig(sim=sim_config, num_subchannels=run.subchannels),
        policy_factory,
    )


@dataclass
class AttackResult:
    """Outcome of one attack run.

    Attributes:
        name: Attack identifier.
        acts_on_attack_row: Activations the attacker landed on the
            victim-adjacent attack row before it was mitigated — the
            paper's headline metric for Jailbreak (Figure 5) and Ratchet
            (Figure 10).
        max_danger: Ground-truth maximum hammer exposure of any victim
            row (from the bank's danger accounting).
        alerts: ALERT episodes triggered during the attack.
        elapsed_ns: Attack duration.
        total_acts: Total activations issued.
        subchannels: Sub-channels of the simulated channel.
        details: Attack-specific extras.
    """

    name: str
    acts_on_attack_row: int = 0
    max_danger: int = 0
    alerts: int = 0
    elapsed_ns: float = 0.0
    total_acts: int = 0
    subchannels: int = 1
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Activations per nanosecond over the attack.

        ``NaN`` when the simulation never advanced (``elapsed_ns == 0``)
        — an undefined rate, distinct from the genuine zero throughput
        of a run that idled through real time without activating.
        """
        if self.elapsed_ns == 0:
            return float("nan")
        return self.total_acts / self.elapsed_ns

    def as_metrics(self) -> Dict[str, float]:
        """Flat metric dict (attack artifacts, baseline gating).

        Numeric ``details`` flatten to ``detail:<name>`` keys. Only
        finite values are emitted: an undefined rate (``throughput``
        of a run that never advanced, a ``detail:`` derived from one)
        is *absent*, never a JSON-breaking ``NaN`` token — and an
        absent gated metric fails the baseline diff explicitly.
        """
        metrics = {
            "acts_on_attack_row": float(self.acts_on_attack_row),
            "max_danger": float(self.max_danger),
            "alerts": float(self.alerts),
            "total_acts": float(self.total_acts),
            "elapsed_ns": float(self.elapsed_ns),
            "throughput": self.throughput,
        }
        for key, value in sorted(self.details.items()):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            metrics[f"detail:{key}"] = float(value)
        return {k: v for k, v in metrics.items() if math.isfinite(v)}


def _listener_lists(sim: AttackSim) -> List[List[MitigationListener]]:
    """Every mitigation-listener list behind ``sim`` (channel or bare)."""
    subchannels = getattr(sim, "subchannels", None)
    if subchannels is None:
        return [sim.mitigation_listeners]
    return [sub.mitigation_listeners for sub in subchannels]


@contextlib.contextmanager
def subscribed(sim: AttackSim, listener: MitigationListener) -> Iterator[None]:
    """Attach a raw mitigation listener for the duration of a block.

    Detaches on exit even if the attack raises, so a reused engine
    never keeps a stale listener (the double-counting bug this module
    used to have).
    """
    lists = _listener_lists(sim)
    for listeners in lists:
        listeners.append(listener)
    try:
        yield
    finally:
        for listeners in lists:
            with contextlib.suppress(ValueError):
                listeners.remove(listener)


class MitigationLog:
    """Records every mitigation performed by the engine.

    Subscribes to every sub-channel of a :class:`ChannelSim` (or to a
    bare :class:`SubchannelSim`). Use as a context manager — or call
    :meth:`detach` — when the simulator outlives the attack; otherwise
    a second attack on the same engine would feed a stale log and
    double-count events.
    """

    def __init__(self, sim: AttackSim) -> None:
        self.events: List[Tuple[int, int, bool, float]] = []
        self._mitigated_rows: Dict[Tuple[int, int], int] = {}
        self._lists = _listener_lists(sim)
        for listeners in self._lists:
            listeners.append(self._on_mitigation)

    def _on_mitigation(self, bank: int, row: int, reactive: bool, time: float) -> None:
        self.events.append((bank, row, reactive, time))
        key = (bank, row)
        self._mitigated_rows[key] = self._mitigated_rows.get(key, 0) + 1

    @property
    def attached(self) -> bool:
        """Whether the log still receives mitigation events."""
        return bool(self._lists)

    def detach(self) -> None:
        """Stop receiving events; safe to call more than once."""
        for listeners in self._lists:
            with contextlib.suppress(ValueError):
                listeners.remove(self._on_mitigation)
        self._lists = []

    def __enter__(self) -> "MitigationLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    def times_mitigated(self, row: int, bank: int = 0) -> int:
        """How many times (bank, row) has been mitigated so far."""
        return self._mitigated_rows.get((bank, row), 0)

    def was_mitigated(self, row: int, bank: int = 0) -> bool:
        return self.times_mitigated(row, bank) > 0

    def last_mitigation_time(self, row: int, bank: int = 0) -> Optional[float]:
        for b, r, _, time in reversed(self.events):
            if b == bank and r == row:
                return time
        return None


def spaced_rows(count: int, start: int = 4096, spacing: int = 8) -> List[int]:
    """Aggressor rows spaced so their victim neighbourhoods never overlap
    (spacing > 2 * blast_radius) and placed away from the refresh wave's
    starting region."""
    return [start + i * spacing for i in range(count)]


def attack_rows(
    run: AttackRunConfig,
    count: int,
    spacing: int = 8,
    start: Optional[int] = None,
) -> List[int]:
    """Aggressor rows derived from (and validated against) the geometry.

    The default start scales with the bank (``rows_per_bank / 16``,
    capped at the historical 4096 so the paper geometry is untouched)
    and the placement is checked to fit, so a shrunken
    :class:`AttackRunConfig` raises a clear error instead of crashing
    deep inside the bank with an out-of-range row.
    """
    if start is None:
        start = min(4096, run.rows_per_bank // 16)
    rows = spaced_rows(count, start=start, spacing=spacing)
    if rows and rows[-1] >= run.rows_per_bank:
        raise ValueError(
            f"bank of {run.rows_per_bank} rows cannot place {count} "
            f"aggressors at spacing {spacing} from row {start}; "
            "increase rows_per_bank or reduce the attack's row count"
        )
    return rows


def require_single_subchannel(run: AttackRunConfig, attack: str) -> None:
    """Guard for adaptive attacks, which drive one sub-channel.

    Their per-ACT feedback loops are defined against a single
    sub-channel's defense state; silently relabeling a one-sub-channel
    run as N would fabricate a channel result. Open-loop patterns
    (kernels, trespass) replicate across sub-channels instead.
    """
    if run.subchannels != 1:
        raise ValueError(
            f"{attack} is adaptive and drives a single sub-channel; "
            "run it at subchannels=1 (channel scaling applies to the "
            "open-loop patterns: kernel-single, kernel-multi, trespass)"
        )
