"""Shared plumbing for attack implementations.

Attacks drive a :class:`~repro.sim.engine.SubchannelSim` adaptively (the
threat model grants the attacker full knowledge of the defense state,
Section 2.1) and report an :class:`AttackResult`. A
:class:`MitigationLog` subscribes to the engine's mitigation events so
attacks can detect exactly when their target row was serviced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.engine import SubchannelSim


@dataclass
class AttackResult:
    """Outcome of one attack run.

    Attributes:
        name: Attack identifier.
        acts_on_attack_row: Activations the attacker landed on the
            victim-adjacent attack row before it was mitigated — the
            paper's headline metric for Jailbreak (Figure 5) and Ratchet
            (Figure 10).
        max_danger: Ground-truth maximum hammer exposure of any victim
            row (from the bank's danger accounting).
        alerts: ALERT episodes triggered during the attack.
        elapsed_ns: Attack duration.
        total_acts: Total activations issued.
        details: Attack-specific extras.
    """

    name: str
    acts_on_attack_row: int = 0
    max_danger: int = 0
    alerts: int = 0
    elapsed_ns: float = 0.0
    total_acts: int = 0
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Activations per nanosecond over the attack."""
        return self.total_acts / self.elapsed_ns if self.elapsed_ns else 0.0


class MitigationLog:
    """Records every mitigation performed by the engine."""

    def __init__(self, sim: SubchannelSim) -> None:
        self.events: List[Tuple[int, int, bool, float]] = []
        self._mitigated_rows: Dict[Tuple[int, int], int] = {}
        sim.mitigation_listeners.append(self._on_mitigation)

    def _on_mitigation(self, bank: int, row: int, reactive: bool, time: float) -> None:
        self.events.append((bank, row, reactive, time))
        key = (bank, row)
        self._mitigated_rows[key] = self._mitigated_rows.get(key, 0) + 1

    def times_mitigated(self, row: int, bank: int = 0) -> int:
        """How many times (bank, row) has been mitigated so far."""
        return self._mitigated_rows.get((bank, row), 0)

    def was_mitigated(self, row: int, bank: int = 0) -> bool:
        return self.times_mitigated(row, bank) > 0

    def last_mitigation_time(self, row: int, bank: int = 0) -> Optional[float]:
        for b, r, _, time in reversed(self.events):
            if b == bank and r == row:
                return time
        return None


def spaced_rows(count: int, start: int = 4096, spacing: int = 8) -> List[int]:
    """Aggressor rows spaced so their victim neighbourhoods never overlap
    (spacing > 2 * blast_radius) and placed away from the refresh wave's
    starting region."""
    return [start + i * spacing for i in range(count)]
