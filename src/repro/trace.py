"""Activation- and address-trace recording and replay.

Traces let you capture the exact memory stream an attack or workload
produced, persist it as JSON-lines, and replay it against a different
mitigation configuration — e.g. record a Jailbreak execution against
Panopticon and replay it against MOAT to show the pattern is harmless
there.

Two trace kinds exist, matching the two layers of the simulation
hierarchy:

* :class:`ActivationTrace` — DRAM-coordinate events ``(time, bank,
  row)``, replayed into one :class:`~repro.sim.engine.SubchannelSim`
  (format v1: ``{"t": <issue_ns>, "b": <bank>, "r": <row>}``).
* :class:`AddressTrace` — physical byte-address events ``(time,
  addr)``, replayed into a :class:`~repro.sim.channel.ChannelSim`
  whose address mapping demultiplexes each access to its sub-channel,
  bank, and row (format v2: ``{"t": <issue_ns>, "a": <addr>}``).
  This is the first-class workload path: the performance front-end
  (:func:`repro.sim.perf.run_trace`) turns a replayed address trace
  into the same :class:`~repro.sim.perf.PerfResult` metrics a
  synthetic workload run produces.

Both kinds share the JSON-lines container: a header line carrying the
format version, kind, and free-form metadata, then one event per line.
:func:`load_trace` sniffs the header and returns the right class.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.sim.channel import ChannelSim
from repro.sim.engine import SubchannelSim

_HEADER_KEY = "repro-trace"
_FORMAT_VERSION = 1
_ADDRESS_FORMAT_VERSION = 2


@dataclass
class ActivationTrace:
    """A recorded activation stream.

    Attributes:
        events: ``(issue_time_ns, bank, row)`` tuples in issue order.
        metadata: Free-form provenance (attack name, config, seed...).
    """

    events: List[Tuple[float, int, int]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Tuple[float, int, int]]:
        return iter(self.events)

    @property
    def duration_ns(self) -> float:
        return self.events[-1][0] if self.events else 0.0

    def rows_touched(self) -> Dict[int, int]:
        """Activation count per (bank << 32 | row) key, flattened to
        per-row counts for single-bank traces."""
        counts: Dict[int, int] = {}
        single_bank = all(bank == 0 for _, bank, _ in self.events)
        for _, bank, row in self.events:
            key = row if single_bank else (bank << 32) | row
            counts[key] = counts.get(key, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON-lines with a header record."""
        path = Path(path)
        with path.open("w") as handle:
            header = {
                _HEADER_KEY: _FORMAT_VERSION,
                "events": len(self.events),
                "metadata": self.metadata,
            }
            handle.write(json.dumps(header) + "\n")
            for time, bank, row in self.events:
                handle.write(json.dumps({"t": time, "b": bank, "r": row}) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "ActivationTrace":
        """Read a trace written by :meth:`save`."""
        path = Path(path)
        with path.open() as handle:
            header_line = handle.readline()
            if not header_line:
                raise ValueError(f"{path}: empty trace file")
            header = json.loads(header_line)
            if _HEADER_KEY not in header:
                raise ValueError(f"{path}: not a repro trace file")
            if header[_HEADER_KEY] != _FORMAT_VERSION:
                raise ValueError(
                    f"{path}: not an activation trace (format "
                    f"{header[_HEADER_KEY]}); use load_trace() to "
                    "dispatch on the trace kind"
                )
            events = []
            for line in handle:
                record = json.loads(line)
                events.append((float(record["t"]), int(record["b"]), int(record["r"])))
        return cls(events=events, metadata=header.get("metadata", {}))


@dataclass
class AddressTrace:
    """A recorded physical-address stream (channel-level workload).

    Attributes:
        events: ``(issue_time_ns, physical_byte_address)`` tuples in
            issue order.
        metadata: Free-form provenance (workload name, mapping, seed...).
    """

    events: List[Tuple[float, int]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Tuple[float, int]]:
        return iter(self.events)

    @property
    def duration_ns(self) -> float:
        return self.events[-1][0] if self.events else 0.0

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON-lines with a v2 header record."""
        path = Path(path)
        with path.open("w") as handle:
            header = {
                _HEADER_KEY: _ADDRESS_FORMAT_VERSION,
                "kind": "address",
                "events": len(self.events),
                "metadata": self.metadata,
            }
            handle.write(json.dumps(header) + "\n")
            for time, addr in self.events:
                handle.write(json.dumps({"t": time, "a": addr}) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "AddressTrace":
        """Read a trace written by :meth:`save`."""
        path = Path(path)
        with path.open() as handle:
            header_line = handle.readline()
            if not header_line:
                raise ValueError(f"{path}: empty trace file")
            header = json.loads(header_line)
            if _HEADER_KEY not in header:
                raise ValueError(f"{path}: not a repro trace file")
            if header[_HEADER_KEY] != _ADDRESS_FORMAT_VERSION:
                raise ValueError(
                    f"{path}: not an address trace (format "
                    f"{header[_HEADER_KEY]}); use load_trace() to "
                    "dispatch on the trace kind"
                )
            events = []
            for line in handle:
                record = json.loads(line)
                events.append((float(record["t"]), int(record["a"])))
        return cls(events=events, metadata=header.get("metadata", {}))


def load_trace(path: str | Path) -> Union[ActivationTrace, AddressTrace]:
    """Load either trace kind, dispatching on the header version."""
    path = Path(path)
    with path.open() as handle:
        header_line = handle.readline()
    if not header_line:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(header_line)
    version = header.get(_HEADER_KEY)
    if version == _FORMAT_VERSION:
        return ActivationTrace.load(path)
    if version == _ADDRESS_FORMAT_VERSION:
        return AddressTrace.load(path)
    raise ValueError(f"{path}: not a repro trace file (header {header!r})")


class TraceRecorder:
    """Attach to a :class:`SubchannelSim` to capture its activations.

    Wraps ``sim.activate`` transparently; detach with :meth:`stop`.
    """

    def __init__(self, sim: SubchannelSim, metadata: Optional[Dict[str, object]] = None):
        self.trace = ActivationTrace(metadata=dict(metadata or {}))
        self._sim = sim
        self._original = sim.activate

        def recording_activate(row: int, bank: int = 0):
            result = self._original(row, bank=bank)
            self.trace.events.append((result.time, bank, row))
            return result

        sim.activate = recording_activate  # type: ignore[method-assign]

    def stop(self) -> ActivationTrace:
        """Detach from the simulator and return the captured trace."""
        self._sim.activate = self._original  # type: ignore[method-assign]
        return self.trace


def replay(
    trace: ActivationTrace,
    sim: SubchannelSim,
    honor_timing: bool = True,
) -> None:
    """Replay a trace into a simulator.

    Args:
        trace: The recorded stream.
        honor_timing: Advance the clock to each event's original issue
            time (idle gaps reproduce); when False, events are issued
            back-to-back at the engine's natural pacing.
    """
    for time, bank, row in trace.events:
        if honor_timing and sim.now < time:
            sim.advance_to(time)
        sim.activate(row, bank=bank)
    sim.flush()


def replay_addresses(
    trace: AddressTrace,
    channel: ChannelSim,
    honor_timing: bool = True,
) -> None:
    """Replay an address trace through a channel simulator.

    Every event is demultiplexed by the channel's address mapping (the
    channel must be configured with one) and issued through the shared
    command front-end, so cross-sub-channel issue constraints apply at
    per-command granularity.

    Args:
        trace: The recorded address stream.
        channel: Target channel (its mapping decodes the addresses).
        honor_timing: Advance the clock to each event's original issue
            time (idle gaps reproduce); when False, events are issued
            back-to-back at the channel's natural pacing.
    """
    for time, addr in trace.events:
        if honor_timing and channel.now < time:
            channel.advance_to(time)
        channel.access(addr)
    channel.flush()
