"""Activation-trace recording and replay.

Traces let you capture the exact activation stream an attack or
workload produced (with issue timestamps and per-event defense-visible
counts), persist it as JSON-lines, and replay it against a different
mitigation configuration — e.g. record a Jailbreak execution against
Panopticon and replay it against MOAT to show the pattern is harmless
there.

Format: one JSON object per line, ``{"t": <issue_ns>, "b": <bank>,
"r": <row>}``; a header line carries metadata.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim.engine import SubchannelSim

_HEADER_KEY = "repro-trace"
_FORMAT_VERSION = 1


@dataclass
class ActivationTrace:
    """A recorded activation stream.

    Attributes:
        events: ``(issue_time_ns, bank, row)`` tuples in issue order.
        metadata: Free-form provenance (attack name, config, seed...).
    """

    events: List[Tuple[float, int, int]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Tuple[float, int, int]]:
        return iter(self.events)

    @property
    def duration_ns(self) -> float:
        return self.events[-1][0] if self.events else 0.0

    def rows_touched(self) -> Dict[int, int]:
        """Activation count per (bank << 32 | row) key, flattened to
        per-row counts for single-bank traces."""
        counts: Dict[int, int] = {}
        single_bank = all(bank == 0 for _, bank, _ in self.events)
        for _, bank, row in self.events:
            key = row if single_bank else (bank << 32) | row
            counts[key] = counts.get(key, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON-lines with a header record."""
        path = Path(path)
        with path.open("w") as handle:
            header = {
                _HEADER_KEY: _FORMAT_VERSION,
                "events": len(self.events),
                "metadata": self.metadata,
            }
            handle.write(json.dumps(header) + "\n")
            for time, bank, row in self.events:
                handle.write(json.dumps({"t": time, "b": bank, "r": row}) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "ActivationTrace":
        """Read a trace written by :meth:`save`."""
        path = Path(path)
        with path.open() as handle:
            header_line = handle.readline()
            if not header_line:
                raise ValueError(f"{path}: empty trace file")
            header = json.loads(header_line)
            if _HEADER_KEY not in header:
                raise ValueError(f"{path}: not a repro trace file")
            if header[_HEADER_KEY] != _FORMAT_VERSION:
                raise ValueError(
                    f"{path}: unsupported trace version {header[_HEADER_KEY]}"
                )
            events = []
            for line in handle:
                record = json.loads(line)
                events.append((float(record["t"]), int(record["b"]), int(record["r"])))
        return cls(events=events, metadata=header.get("metadata", {}))


class TraceRecorder:
    """Attach to a :class:`SubchannelSim` to capture its activations.

    Wraps ``sim.activate`` transparently; detach with :meth:`stop`.
    """

    def __init__(self, sim: SubchannelSim, metadata: Optional[Dict[str, object]] = None):
        self.trace = ActivationTrace(metadata=dict(metadata or {}))
        self._sim = sim
        self._original = sim.activate

        def recording_activate(row: int, bank: int = 0):
            result = self._original(row, bank=bank)
            self.trace.events.append((result.time, bank, row))
            return result

        sim.activate = recording_activate  # type: ignore[method-assign]

    def stop(self) -> ActivationTrace:
        """Detach from the simulator and return the captured trace."""
        self._sim.activate = self._original  # type: ignore[method-assign]
        return self.trace


def replay(
    trace: ActivationTrace,
    sim: SubchannelSim,
    honor_timing: bool = True,
) -> None:
    """Replay a trace into a simulator.

    Args:
        trace: The recorded stream.
        honor_timing: Advance the clock to each event's original issue
            time (idle gaps reproduce); when False, events are issued
            back-to-back at the engine's natural pacing.
    """
    for time, bank, row in trace.events:
        if honor_timing and sim.now < time:
            sim.advance_to(time)
        sim.activate(row, bank=bank)
    sim.flush()
