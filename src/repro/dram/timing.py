"""DDR5 timing parameters and system configuration (paper Tables 1 and 3).

All times are in nanoseconds and stored as floats; the simulator clock is
a float nanosecond counter. The values default to the revised DDR5
specifications (JESD79-5C) with PRAC enabled, exactly as listed in
Table 1 of the paper:

========  =============================================  =======
Name      Description                                    Value
========  =============================================  =======
tACT      Time for performing ACT                        12 ns
tPRE      Time to precharge an open row                  36 ns
tRAS      Minimum time a row must be kept open           16 ns
tRC       Time between successive ACTs to a bank         52 ns
tREFW     Refresh period                                 32 ms
tREFI     Time between successive REF commands           3900 ns
tRFC      Execution time for a REF command               410 ns
========  =============================================  =======

Derived quantities used throughout the paper are exposed as properties
(for example, a maximum of 67 activations fit in one tREFI, and 1638
aggressor rows can be mitigated per tREFW at one aggressor per 5 tREFI).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


NS_PER_MS = 1_000_000.0


@dataclass(frozen=True)
class DramTiming:
    """Deterministic DDR5 timing parameters (nanoseconds).

    The defaults correspond to the revised DDR5 specification with PRAC
    support (JESD79-5C), i.e. Table 1 of the paper.
    """

    t_act: float = 12.0
    t_pre: float = 36.0
    t_ras: float = 16.0
    t_rc: float = 52.0
    #: Table 1 lists tREFW = 32 ms and tREFI = 3900 ns, which are
    #: mutually rounded; we keep the architectural identity
    #: tREFW = 8192 * tREFI (31.9488 ms) so the refresh-group count is
    #: exactly 8192.
    t_refw: float = 8192 * 3900.0
    t_refi: float = 3900.0
    t_rfc: float = 410.0
    #: Normal-operation window after ALERT assertion before the MC must
    #: stall and issue RFMs (JEDEC ABO specification, Section 2.6).
    t_abo_act_window: float = 180.0
    #: Execution time for one RFM command (equivalent to refreshing
    #: five rows).
    t_rfm: float = 350.0

    @property
    def refs_per_refw(self) -> int:
        """Number of REF commands per refresh window (8192 for DDR5)."""
        return round(self.t_refw / self.t_refi)

    @property
    def acts_per_trefi(self) -> int:
        """Maximum activations between two REFs: floor((tREFI-tRFC)/tRC)."""
        return int((self.t_refi - self.t_rfc) // self.t_rc)

    @property
    def acts_per_refw(self) -> int:
        """Maximum activations a single bank can absorb per tREFW."""
        return self.acts_per_trefi * self.refs_per_refw

    def alert_duration(self, abo_level: int) -> float:
        """Total duration of one ALERT episode for a given ABO level.

        An ALERT consists of a 180 ns normal-operation window followed by
        ``abo_level`` back-to-back RFM commands of 350 ns each. For
        level 1 this is the paper's tALERT of 530 ns.
        """
        _check_abo_level(abo_level)
        return self.t_abo_act_window + abo_level * self.t_rfm

    def inter_alert_time(self, abo_level: int) -> float:
        """Minimum time between consecutive ALERT assertions (tA2A).

        Appendix A: ``tA2A = 180ns + (350ns + tRC) * L`` — the ALERT
        window plus one mandatory activation slot per RFM issued.
        """
        _check_abo_level(abo_level)
        return self.t_abo_act_window + (self.t_rfm + self.t_rc) * abo_level

    def mitigations_per_refw(self, trefi_per_mitigation: int) -> int:
        """Aggressor rows mitigable per tREFW at the given proactive rate.

        At the paper's default of one aggressor row per 5 tREFI this is
        8192 / 5 = 1638 rows per bank per refresh window.
        """
        if trefi_per_mitigation <= 0:
            raise ValueError("trefi_per_mitigation must be positive")
        return self.refs_per_refw // trefi_per_mitigation


def _check_abo_level(abo_level: int) -> None:
    if abo_level not in (1, 2, 4):
        raise ValueError(f"ABO level must be 1, 2, or 4, got {abo_level!r}")


#: Timing constants used throughout the paper (Table 1).
DDR5_PRAC_TIMING = DramTiming()

#: Pre-PRAC DDR5 timings mentioned in Section 2.6 (tPRE 16 ns, tRAS 32 ns,
#: tRC 48 ns) — used only to illustrate the cost of the PRAC update.
DDR5_LEGACY_TIMING = DramTiming(t_pre=16.0, t_ras=32.0, t_rc=48.0)


@dataclass(frozen=True)
class SystemConfig:
    """Baseline system configuration (paper Table 3)."""

    cores: int = 8
    core_freq_ghz: float = 4.0
    core_width: int = 4
    rob_entries: int = 256
    llc_bytes: int = 8 * 1024 * 1024
    llc_ways: int = 16
    line_bytes: int = 64
    memory_gb: int = 32
    banks: int = 32
    subchannels: int = 2
    ranks: int = 1
    rows_per_bank: int = 64 * 1024
    row_bytes: int = 8 * 1024
    timing: DramTiming = dataclasses.field(default_factory=DramTiming)
    #: Closed-page policy is the paper's default (more stressful: every
    #: access issues an ACT).
    closed_page: bool = True

    @property
    def banks_per_subchannel(self) -> int:
        return self.banks

    @property
    def total_banks(self) -> int:
        return self.banks * self.subchannels * self.ranks

    @property
    def instructions_per_ns(self) -> float:
        """Aggregate committed instructions per ns at IPC=1 per core.

        Used by the workload front-end to convert ACT-per-kilo-instruction
        rates into wall-clock activation rates.
        """
        return self.cores * self.core_freq_ghz


#: Default system configuration used in the paper's evaluation.
BASELINE_SYSTEM = SystemConfig()
