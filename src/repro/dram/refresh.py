"""Refresh engine: contiguous group refresh and counter-reset policies.

DDR5 divides a bank into 8192 refresh groups; one REF command refreshes
one group, and a full wave takes one tREFW. The paper's Section 4.3
analyzes three counter-reset strategies:

* ``FREE_RUNNING`` — never reset counters at refresh (Panopticon's
  free-running counters).
* ``UNSAFE`` — reset every counter in the group being refreshed. This is
  the Figure 7(a) design: a row hammered T times just before and T times
  just after its reset exposes a not-yet-refreshed victim in the next
  group to 2T activations while the counter shows only T.
* ``SAFE`` — MOAT's scheme (Figure 7(b)): reset the group's counters but
  copy the counters of the *last two rows* of the group into two SRAM
  shadow registers. The shadow registers keep incrementing on
  activations and are what the defense consults, so the boundary rows
  cannot under-report. The shadows are dropped when the *next* group is
  refreshed (at that point the boundary rows' victims are safe).

The number of shadow registers equals the blast radius (2 for the
paper's four-victim mitigation), costing 2 bytes of SRAM per bank.
"""

from __future__ import annotations

import enum
from typing import Dict, List

from repro.dram.bank import Bank


class CounterResetPolicy(enum.Enum):
    """How PRAC counters are treated when a refresh group is refreshed."""

    FREE_RUNNING = "free-running"
    UNSAFE = "unsafe-reset"
    SAFE = "safe-reset"


class RefreshEngine:
    """Spatially contiguous group refresh with configurable counter reset.

    Args:
        bank: The bank being refreshed.
        num_groups: Number of refresh groups (8192 in DDR5; tests use
            fewer). Rows are split contiguously, ``rows_per_group =
            num_rows / num_groups``.
        reset_policy: Counter handling at refresh (see module docstring).
        max_postponed: How many REFs may be postponed before a mandatory
            batch (2 in DDR5; Appendix B's attack vector).
    """

    def __init__(
        self,
        bank: Bank,
        num_groups: int = 8192,
        reset_policy: CounterResetPolicy = CounterResetPolicy.SAFE,
        max_postponed: int = 2,
    ) -> None:
        if num_groups <= 0:
            raise ValueError("num_groups must be positive")
        if bank.num_rows % num_groups != 0:
            raise ValueError(
                f"num_rows ({bank.num_rows}) must be divisible by "
                f"num_groups ({num_groups})"
            )
        self.bank = bank
        self.num_groups = num_groups
        self.rows_per_group = bank.num_rows // num_groups
        self.reset_policy = reset_policy
        self.max_postponed = max_postponed
        #: Next group to refresh.
        self.pointer = 0
        #: REFs currently postponed (0..max_postponed).
        self.postponed = 0
        #: SRAM shadow counters for boundary rows (row -> true count
        #: since the row's victims were last refreshed). At most
        #: ``bank.blast_radius`` entries, per the SAFE policy.
        self.shadow: Dict[int, int] = {}
        #: Total REF commands executed (for rate bookkeeping).
        self.refs_executed = 0

    # ------------------------------------------------------------------
    # Defense-visible counter value
    # ------------------------------------------------------------------

    def effective_count(self, row: int) -> int:
        """Counter value the mitigation logic should consult for ``row``.

        Under the SAFE policy boundary rows are shadowed in SRAM; the
        shadow holds the true count across the reset, so it dominates.
        """
        if row in self.shadow:
            return self.shadow[row]
        return self.bank.prac_count(row)

    def note_activation(self, row: int) -> int:
        """Record an activation for shadow accounting; returns the
        effective (defense-visible) count after the activation.

        Call this *after* :meth:`Bank.activate` for the same row.
        """
        if row in self.shadow:
            self.shadow[row] += 1
            return self.shadow[row]
        return self.bank.prac_count(row)

    def clear_shadow(self, row: int) -> None:
        """Drop the shadow entry for ``row`` (after it was mitigated)."""
        self.shadow.pop(row, None)

    # ------------------------------------------------------------------
    # Refresh operations
    # ------------------------------------------------------------------

    def group_rows(self, group: int) -> List[int]:
        """Rows belonging to refresh group ``group``."""
        if not 0 <= group < self.num_groups:
            raise IndexError(f"group {group} out of range")
        start = group * self.rows_per_group
        return list(range(start, start + self.rows_per_group))

    def postpone(self) -> bool:
        """Postpone the upcoming REF if permitted; returns success.

        Postponement is the attacker-controllable policy used by the
        Appendix B refresh-postponement attack.
        """
        if self.postponed >= self.max_postponed:
            return False
        self.postponed += 1
        return True

    def execute_ref(self) -> int:
        """Execute one REF: refresh the next group, apply counter policy.

        Returns the group index that was refreshed.
        """
        group = self.pointer
        rows = self.group_rows(group)

        # Data refresh: every row in the group has its charge restored,
        # so its accumulated hammer exposure clears.
        for row in rows:
            self.bank.refresh_row_data(row)

        if self.reset_policy is CounterResetPolicy.UNSAFE:
            for row in rows:
                self.bank.reset_prac(row)
        elif self.reset_policy is CounterResetPolicy.SAFE:
            # The previous group's boundary rows are now safe: their
            # high-side victims (first rows of this group) were just
            # refreshed.
            self.shadow.clear()
            boundary = rows[-self.bank.blast_radius:]
            for row in boundary:
                self.shadow[row] = self.bank.prac_count(row)
            for row in rows:
                self.bank.reset_prac(row)

        self.pointer = (self.pointer + 1) % self.num_groups
        self.refs_executed += 1
        if self.postponed > 0:
            self.postponed -= 1
        return group

    def execute_postponed_batch(self) -> List[int]:
        """Execute all postponed REFs plus the current one as a batch."""
        batch = self.postponed + 1
        self.postponed = 0
        return [self.execute_ref() for _ in range(batch)]
