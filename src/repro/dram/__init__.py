"""DRAM substrate: timings, commands, banks with PRAC counters, refresh.

This subpackage models the parts of a DDR5 device that matter for
Rowhammer mitigation studies: deterministic timing parameters
(:mod:`repro.dram.timing`), the command vocabulary
(:mod:`repro.dram.commands`), a bank with per-row activation counters
(:mod:`repro.dram.bank`), and the refresh engine with safe/unsafe
counter-reset policies (:mod:`repro.dram.refresh`).
"""

from repro.dram.bank import Bank, RowState
from repro.dram.commands import Command, CommandKind
from repro.dram.refresh import CounterResetPolicy, RefreshEngine
from repro.dram.timing import DramTiming, SystemConfig, DDR5_PRAC_TIMING

__all__ = [
    "Bank",
    "RowState",
    "Command",
    "CommandKind",
    "CounterResetPolicy",
    "RefreshEngine",
    "DramTiming",
    "SystemConfig",
    "DDR5_PRAC_TIMING",
]
