"""DRAM command vocabulary used by the simulator and attack patterns.

Commands are lightweight records; the simulator consumes them from
attack patterns or workload generators and applies DDR5 timing rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CommandKind(enum.Enum):
    """Kinds of DRAM commands relevant to Rowhammer mitigation."""

    ACT = "act"
    PRE = "pre"
    REF = "ref"
    RFM = "rfm"
    #: Pseudo-command emitted by patterns to deliberately idle the bus
    #: (used by staggered attacks such as TSA).
    NOP = "nop"


@dataclass(frozen=True)
class Command:
    """A single command addressed to one bank.

    Attributes:
        kind: The command kind.
        bank: Index of the target bank within the sub-channel.
        row: Target row for ACT commands (ignored otherwise).
        duration: Optional explicit duration override in ns (used by NOP).
    """

    kind: CommandKind
    bank: int = 0
    row: int = 0
    duration: float = 0.0

    @staticmethod
    def act(row: int, bank: int = 0) -> "Command":
        """Convenience constructor for an activate command."""
        return Command(CommandKind.ACT, bank=bank, row=row)

    @staticmethod
    def nop(duration: float, bank: int = 0) -> "Command":
        """Convenience constructor for an idle period of ``duration`` ns."""
        return Command(CommandKind.NOP, bank=bank, duration=duration)
