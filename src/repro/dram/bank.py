"""DRAM bank model with per-row activation counters (PRAC).

The bank tracks two counts per row:

* ``prac`` — the defense-visible per-row activation counter stored in the
  DRAM array. Mitigation policies read it, and the refresh engine may
  reset it according to the configured
  :class:`~repro.dram.refresh.CounterResetPolicy`.
* ``danger`` — ground truth used only for security accounting: for each
  *victim* row, the number of aggressor activations it has absorbed since
  its data was last refreshed (by the periodic refresh wave or by a
  victim-refresh mitigation). An attack succeeds when any victim's danger
  exceeds the Rowhammer threshold.

Keeping the two separate is what lets the test-suite demonstrate the
paper's Figure 7(a) vulnerability: an unsafe counter reset zeroes ``prac``
while ``danger`` keeps accumulating across the refresh boundary.

Two storage layouts are supported:

* **Sparse** (default) — counters live in a dict keyed by row. Attacks
  touch a handful of rows, so construction cost is independent of the
  row count and introspection (:meth:`Bank.touched_rows`) reports
  exactly the rows an attack materialized.
* **Dense** (``dense_counters=True``) — one preallocated flat array
  slot per row. Workload simulations activate hundreds of thousands of
  distinct rows, where per-row dict churn dominates the hot path; the
  flat table gives the engine's batched activate loop O(1) unhashed
  access. Counter semantics are bit-identical to the sparse layout.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional


@dataclass(frozen=True)
class RowState:
    """Read-only snapshot of one row's counters (for tests/inspection)."""

    row: int
    prac: int
    danger: int


class Bank:
    """A DRAM bank: sparse per-row PRAC counters plus danger accounting.

    Args:
        num_rows: Number of rows in the bank (default 64K, per Table 3).
        blast_radius: How many rows on each side of an aggressor are
            victims. The paper uses 2 (four victim rows per aggressor).
        track_danger: Disable for performance-oriented simulations that
            only need defense-visible state (workload runs in
            :mod:`repro.sim`); security simulations keep it on.
        initial_counter: Optional function ``row -> int`` giving the
            initial PRAC value of a row (used by randomized Panopticon).
            Defaults to zero. Incompatible with ``dense_counters``.
        dense_counters: Store PRAC counters in a preallocated flat
            array instead of a sparse dict (see module docstring).
        counter_store: Optional externally owned dense counter storage
            (a writable flat int64 buffer of length ``num_rows``,
            typically a ``memoryview`` slice of one engine-level block).
            Lets the engine place every bank's counters in one
            contiguous allocation so compiled kernels can address the
            whole sub-channel as a 2-D struct-of-arrays view. Requires
            ``dense_counters``; semantics are identical to the
            bank-owned array.
    """

    def __init__(
        self,
        num_rows: int = 64 * 1024,
        blast_radius: int = 2,
        track_danger: bool = True,
        initial_counter: Optional[Callable[[int], int]] = None,
        dense_counters: bool = False,
        counter_store=None,
    ) -> None:
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        if blast_radius < 1:
            raise ValueError("blast_radius must be at least 1")
        if dense_counters and initial_counter is not None:
            raise ValueError(
                "dense_counters starts all-zero; initial_counter needs the "
                "sparse layout"
            )
        if counter_store is not None:
            if not dense_counters:
                raise ValueError("counter_store requires dense_counters")
            if len(counter_store) != num_rows:
                raise ValueError(
                    f"counter_store holds {len(counter_store)} slots for "
                    f"{num_rows} rows"
                )
        self.num_rows = num_rows
        self.blast_radius = blast_radius
        self.track_danger = track_danger
        self.dense_counters = dense_counters
        self._initial_counter = initial_counter
        #: PRAC storage: flat array (dense) or row-keyed dict (sparse).
        #: The engine's batched activate loop indexes the array
        #: directly, so the dense layout must stay a plain sequence.
        if counter_store is not None:
            self._prac = counter_store
        else:
            self._prac = array("q", bytes(8 * num_rows)) if dense_counters else {}
        self._danger: Dict[int, int] = {}
        #: Total ACT commands this bank has performed (for energy model).
        self.total_activations = 0
        #: Extra activations spent on mitigation (victim refreshes and
        #: counter-reset activations), for the Section 6.5 energy model.
        self.mitigation_activations = 0
        #: High-water mark of any victim's danger count, and the victim
        #: row where it occurred. This is the paper's security metric.
        self.max_danger = 0
        self.max_danger_row: Optional[int] = None

    # ------------------------------------------------------------------
    # Counter access
    # ------------------------------------------------------------------

    def prac_count(self, row: int) -> int:
        """Defense-visible PRAC counter of ``row``."""
        self._check_row(row)
        if self.dense_counters:
            return self._prac[row]
        count = self._prac.get(row)
        if count is None:
            count = self._initial_counter(row) if self._initial_counter else 0
            self._prac[row] = count
        return count

    def danger_count(self, row: int) -> int:
        """Ground-truth hammer exposure of victim ``row``."""
        self._check_row(row)
        return self._danger.get(row, 0)

    def row_state(self, row: int) -> RowState:
        """Snapshot of one row's counters."""
        return RowState(row, self.prac_count(row), self.danger_count(row))

    def victims_of(self, row: int) -> Iterable[int]:
        """Victim rows of aggressor ``row`` within the blast radius."""
        low = max(0, row - self.blast_radius)
        high = min(self.num_rows - 1, row + self.blast_radius)
        return (v for v in range(low, high + 1) if v != row)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def activate(self, row: int) -> int:
        """Perform one activation of ``row``; returns the new PRAC count.

        The PRAC read-modify-write happens during precharge on real
        hardware; the simulator treats ACT+PRE as one atomic step of
        length tRC, so the updated count is available immediately.
        """
        count = self.prac_count(row) + 1
        self._prac[row] = count
        self.total_activations += 1
        if self.track_danger:
            self._spread_danger(row)
        return count

    def note_activations(self, count: int) -> None:
        """Account ``count`` activations performed by a batched driver
        (the engine's fast loop updates the PRAC array in place)."""
        self.total_activations += count

    def _spread_danger(self, row: int) -> None:
        danger = self._danger
        low = max(0, row - self.blast_radius)
        high = min(self.num_rows - 1, row + self.blast_radius)
        for victim in range(low, high + 1):
            if victim == row:
                continue
            exposure = danger.get(victim, 0) + 1
            danger[victim] = exposure
            if exposure > self.max_danger:
                self.max_danger = exposure
                self.max_danger_row = victim

    def reset_prac(self, row: int) -> None:
        """Reset the PRAC counter of ``row`` (refresh or mitigation)."""
        self._check_row(row)
        self._prac[row] = 0

    def refresh_row_data(self, row: int) -> None:
        """Refresh the *data* of ``row``: its accumulated exposure clears."""
        self._check_row(row)
        if self.track_danger:
            self._danger[row] = 0

    def mitigate_aggressor(self, row: int, reset_counter: bool = True) -> int:
        """Victim-refresh mitigation of aggressor ``row``.

        Refreshes all victim rows in the blast radius and (by default)
        resets the aggressor's PRAC counter. Returns the number of extra
        activations spent (victims refreshed + one counter-reset
        activation), which feeds the energy model.
        """
        self._check_row(row)
        extra = 0
        for victim in self.victims_of(row):
            self.refresh_row_data(victim)
            extra += 1
        if reset_counter:
            self.reset_prac(row)
            extra += 1
        self.mitigation_activations += extra
        return extra

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def touched_rows(self) -> Dict[int, int]:
        """All rows with a materialized PRAC counter (row -> count).

        In the dense layout every row has a (preallocated) counter, so
        only rows with a nonzero count are reported.
        """
        if self.dense_counters:
            return {row: c for row, c in enumerate(self._prac) if c}
        return dict(self._prac)

    def rows_with_prac_at_least(self, threshold: int) -> int:
        """Number of rows whose PRAC counter is >= ``threshold``."""
        counts = self._prac if self.dense_counters else self._prac.values()
        return sum(1 for count in counts if count >= threshold)

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.num_rows:
            raise IndexError(f"row {row} out of range [0, {self.num_rows})")
