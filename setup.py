"""Setup shim for environments without the ``wheel`` package.

Enables ``pip install -e . --no-build-isolation`` via the legacy
``setup.py develop`` code path; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
