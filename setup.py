"""Packaging for the MOAT (ASPLOS 2025) reproduction toolkit.

Plain ``setuptools`` with no build-time dependencies beyond the
standard toolchain. ``pip install -e .`` needs ``wheel`` (or
setuptools >= 70, which bundles ``bdist_wheel``); environments without
either can use the legacy ``python setup.py develop`` path, which
installs the same editable package. Either way installs the ``repro``
console script used by CI and the sweep harness
(``repro sweep fig11 --check``).
"""

import pathlib
import re

from setuptools import find_packages, setup

HERE = pathlib.Path(__file__).parent


def read_version() -> str:
    text = (HERE / "src" / "repro" / "__init__.py").read_text()
    match = re.search(r'^__version__ = "([^"]+)"', text, re.MULTILINE)
    if not match:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


def read_long_description() -> str:
    readme = HERE / "README.md"
    return readme.read_text() if readme.is_file() else ""


setup(
    name="repro-moat",
    version=read_version(),
    description=(
        "Reproduction of MOAT: Securely Mitigating Rowhammer with "
        "Per-Row Activation Counters (ASPLOS 2025)"
    ),
    long_description=read_long_description(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
    extras_require={
        "test": ["pytest", "pytest-benchmark", "pytest-xdist", "hypothesis"],
        # Optional compiled hot-path kernels (REPRO_BACKEND=numba /
        # --backend numba). Pure-python runs need neither package and
        # produce bit-identical results.
        "fast": ["numpy", "numba"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.9",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Security",
        "Topic :: System :: Hardware",
    ],
)
