#!/usr/bin/env python3
"""Attack gallery: every attack pattern from the paper, end to end.

Runs each attack against its target design and prints the headline
number next to the paper's:

* Jailbreak vs Panopticon (Section 3)      — 9x the queueing threshold
* Feinting vs ideal per-row counters (§2.5) — harmonic-sum blowup
* Ratchet vs MOAT (Section 5)               — a handful above ATH, bounded
* Refresh postponement vs drain-all (App B) — 2.6x the threshold
* TRRespass-style thrashing vs TRR (§2.4)   — tracker fully blinded

Run:  python examples/attack_gallery.py
"""

from repro.analysis.feinting_model import feinting_bound
from repro.analysis.ratchet_model import ratchet_safe_trh
from repro.attacks import (
    run_deterministic_jailbreak,
    run_feinting,
    run_many_aggressor_attack,
    run_postponement_attack,
    run_ratchet,
)


def main() -> None:
    print("=" * 64)
    print("1. Jailbreak vs Panopticon (queue threshold 128)")
    jailbreak = run_deterministic_jailbreak()
    print(f"   ACTs on attack row : {jailbreak.acts_on_attack_row} "
          f"(paper: 1152, i.e. 9x threshold)")
    print(f"   ALERTs triggered   : {jailbreak.alerts} (pattern stays stealthy)")

    print("=" * 64)
    print("2. Feinting vs idealized per-row tracking (1 aggressor / 4 tREFI)")
    feint = run_feinting(trefi_per_mitigation=4, periods=512)
    scaled_bound = 268 * sum(1.0 / i for i in range(1, 513))
    print(f"   survivor activations: {feint.acts_on_attack_row} "
          f"(scaled bound {scaled_bound:.0f}; full-window bound "
          f"{feinting_bound(4):.0f}, paper Table 2: 2195)")

    print("=" * 64)
    print("3. Ratchet vs MOAT (ATH=64, ABO level 1, pool of 64 rows)")
    ratchet = run_ratchet(ath=64, pool_size=64)
    print(f"   max ACTs on last row: {ratchet.acts_on_attack_row} "
          f"(bounded by the Appendix A model: {ratchet_safe_trh(64, 1)})")
    print(f"   ALERT chain length  : {ratchet.alerts}")

    print("=" * 64)
    print("4. Refresh postponement vs drain-all Panopticon (threshold 128)")
    postpone = run_postponement_attack()
    print(f"   ACTs before mitigation: {postpone.acts_on_attack_row} "
          f"(paper: 328 = 128 + ~200)")

    print("=" * 64)
    print("5. Many-aggressor thrashing vs a 16-entry TRR tracker")
    blind = run_many_aggressor_attack(num_aggressors=32, tracker_entries=16,
                                      acts_per_aggressor=600)
    caught = run_many_aggressor_attack(num_aggressors=4, tracker_entries=16,
                                       acts_per_aggressor=600)
    print(f"   32 aggressors: max exposure {blind.max_danger} (tracker blind)")
    print(f"    4 aggressors: max exposure {caught.max_danger} (tracker active)")

    print("=" * 64)
    print("Takeaway: only MOAT's exposure stays bounded near its ATH;")
    print("every queue/SRAM design leaks by an order of magnitude.")


if __name__ == "__main__":
    main()
