#!/usr/bin/env python3
"""Address-level attack demo: from virtual buffers to bank/row hammering.

Shows the full software path an attacker (or a defender's red team)
exercises: physical addresses run through the CoffeeLake-style bank
hash, a clflush-style loop defeats the LLC, and the resulting
activation stream drives a MOAT-protected bank.

Run:  python examples/address_level_hammer.py
"""

from repro import MoatPolicy, SimConfig, SubchannelSim
from repro.sim.cache import SetAssociativeCache
from repro.sim.mapping import CoffeeLakeMapping


def main() -> None:
    mapping = CoffeeLakeMapping()
    llc = SetAssociativeCache()

    # The attacker wants double-sided hammering around victim row 5000
    # in bank 7 of sub-channel 0: aggressors are rows 4999 and 5001.
    aggressors = [
        mapping.compose(subchannel=0, bank=7, row=4999),
        mapping.compose(subchannel=0, bank=7, row=5001),
    ]
    for addr in aggressors:
        decoded = mapping.decode(addr)
        print(f"aggressor address {addr:#014x} -> bank {decoded.bank}, "
              f"row {decoded.row}")

    sim = SubchannelSim(SimConfig(num_banks=32), lambda: MoatPolicy(ath=64))

    # Access loop with explicit cache-line flushes (the classic
    # clflush-based hammer): every access misses the LLC and reaches
    # DRAM as an activation under the closed-page policy.
    hammers = 5_000
    dram_accesses = 0
    for _ in range(hammers):
        for addr in aggressors:
            llc.flush_line(addr)
            if not llc.access(addr):
                decoded = mapping.decode(addr)
                sim.activate(decoded.row, bank=decoded.bank)
                dram_accesses += 1
    sim.flush()

    stats = sim.stats()
    print(f"\nhammer loop      : {hammers:,} iterations, "
          f"{dram_accesses:,} DRAM activations (LLC hit rate "
          f"{llc.hit_rate:.0%} thanks to clflush)")
    print(f"ALERTs raised    : {stats['alerts']:,}")
    print(f"victim exposure  : {stats['max_danger']} activations")
    print("\nNote the double-sided subtlety: MOAT counts *activations per")
    print("aggressor row* (the paper's T_RH is a per-aggressor bound of")
    print("99), so a victim squeezed between two aggressors accumulates")
    print("up to 2x that before both sides are mitigated. This is an")
    print("inherent property of activation counting (Section 8 contrasts")
    print("it with ProTRR's victim counting); vendors provision T_RH for")
    print("the worst-case blast pattern of their parts accordingly.")
    assert stats["max_danger"] <= 2 * (64 + 4), "double-sided bound exceeded"


if __name__ == "__main__":
    main()
