#!/usr/bin/env python3
"""Fleet report: MOAT's cost across a datacenter workload mix.

An operator deciding whether to enable PRAC+ABO (and at which MR71
level) wants the expected slowdown, ALERT rate, and energy overhead on
their actual mix. This example runs a weighted mix of the paper's
SPEC/GAP profiles and prints a fleet-level summary, including the
worst-case performance-attack exposure from Section 7.

Run:  python examples/datacenter_fleet_report.py
"""

from repro.analysis.throughput import continuous_alert_slowdown
from repro.report.tables import format_table
from repro.sim.perf import MoatRunConfig, run_workload
from repro.workloads.profiles import profile_by_name

#: (workload, share of fleet) — a web/analytics-heavy mix.
FLEET_MIX = [
    ("xalancbmk", 0.25),
    ("mcf", 0.15),
    ("pr", 0.15),
    ("bfs", 0.10),
    ("cc", 0.10),
    ("roms", 0.10),
    ("xz", 0.10),
    ("gcc", 0.05),
]

N_TREFI = 4096  # half refresh window per run keeps this demo snappy


def main() -> None:
    config = MoatRunConfig(ath=64, n_trefi=N_TREFI)
    rows = []
    mix_slowdown = 0.0
    mix_alerts = 0.0
    mix_energy = 0.0
    for name, share in FLEET_MIX:
        result = run_workload(profile_by_name(name), config)
        rows.append(
            (
                profile_by_name(name).display_name,
                f"{share:.0%}",
                f"{result.slowdown:.3%}",
                f"{result.alerts_per_trefi:.3f}",
                f"{result.activation_overhead:.2%}",
            )
        )
        mix_slowdown += share * result.slowdown
        mix_alerts += share * result.alerts_per_trefi
        mix_energy += share * result.activation_overhead

    print(
        format_table(
            ["workload", "share", "slowdown", "ALERT/tREFI", "extra ACTs"],
            rows,
            title="Fleet mix under MOAT (ATH=64, ETH=32, ABO level 1)",
        )
    )
    print(f"\nweighted fleet slowdown     : {mix_slowdown:.3%} "
          f"(paper suite average: 0.28%)")
    print(f"weighted ALERT rate         : {mix_alerts:.3f} per tREFI "
          f"(refresh already costs 1 per tREFI)")
    print(f"weighted activation overhead: {mix_energy:.2%} "
          f"(paper: 2.3%; <0.5% of DRAM energy)")

    print("\nAdversarial tenant exposure (Section 7):")
    print(f"  worst-case continuous-ALERT slowdown: "
          f"{continuous_alert_slowdown(1):.1f}x on the victim sub-channel")
    print("  comparable to ordinary row-buffer-conflict contention - not")
    print("  a new denial-of-service class (paper Section 7.3).")


if __name__ == "__main__":
    main()
