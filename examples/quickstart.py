#!/usr/bin/env python3
"""Quickstart: MOAT protecting a bank against a naive hammer.

Builds a DDR5 sub-channel with MOAT (ATH=64, ETH=32), hammers one row
far beyond the Rowhammer threshold, and shows that the ground-truth
victim exposure never exceeds the paper's tolerated T_RH of 99 — while
an unprotected bank sails past it almost immediately.

Run:  python examples/quickstart.py
"""

from repro import MoatPolicy, NullPolicy, SimConfig, SubchannelSim
from repro.analysis.ratchet_model import ratchet_safe_trh

HAMMERS = 20_000
ROW = 12_345


def hammer(sim: SubchannelSim, label: str) -> None:
    for _ in range(HAMMERS):
        sim.activate(ROW)
    sim.flush()
    stats = sim.stats()
    print(f"{label}:")
    print(f"  activations issued      : {stats['total_acts']:,}")
    print(f"  ALERTs raised           : {stats['alerts']:,}")
    print(f"  mitigations (pro/react) : "
          f"{stats['proactive_mitigations']:,} / {stats['reactive_mitigations']:,}")
    print(f"  max victim exposure     : {stats['max_danger']:,} activations")
    print()


def main() -> None:
    safe_trh = ratchet_safe_trh(ath=64, level=1)
    print(f"MOAT (ATH=64, ABO level 1) provably tolerates T_RH = {safe_trh}\n")

    protected = SubchannelSim(SimConfig(), lambda: MoatPolicy(ath=64))
    hammer(protected, "MOAT-protected bank")
    exposure = protected.stats()["max_danger"]
    assert exposure <= safe_trh, "security invariant violated!"
    print(f"  -> exposure {exposure} <= tolerated T_RH {safe_trh}: SAFE\n")

    unprotected = SubchannelSim(SimConfig(), NullPolicy)
    hammer(unprotected, "Unprotected bank")
    print("  -> an unprotected bank exposes victims to every activation;")
    print(f"     at a real-world T_RH of 4,800 this row flips bits "
          f"{unprotected.stats()['max_danger'] // 4800}x over.")


if __name__ == "__main__":
    main()
