#!/usr/bin/env python3
"""Provisioning study: choosing ATH/ETH/level for a target DRAM part.

A DRAM vendor knows the Rowhammer threshold (T_RH) of their chips and
wants the cheapest MOAT configuration that tolerates it. This example
walks the decision the paper's Sections 5-6 and Appendix D support:

1. From a target T_RH, find the largest safe ATH per ABO level
   (Appendix A model inverted).
2. Estimate the performance cost of that ATH on a workload mix.
3. Report SRAM cost and the recommended configuration.

Run:  python examples/provisioning_study.py [target_trh]
"""

import sys

from repro.analysis.energy import moat_sram_bytes
from repro.analysis.ratchet_model import ratchet_safe_trh
from repro.report.tables import format_table
from repro.sim.perf import MoatRunConfig, run_workload
from repro.workloads.profiles import profile_by_name


def largest_safe_ath(target_trh: int, level: int) -> int:
    """Invert the Appendix A model: max ATH with safe_trh <= target."""
    best = 0
    for ath in range(1, target_trh + 1):
        if ratchet_safe_trh(ath, level) <= target_trh:
            best = ath
        else:
            break
    return best


def main() -> None:
    target_trh = int(sys.argv[1]) if len(sys.argv) > 1 else 99
    print(f"Target Rowhammer threshold: {target_trh}\n")

    rows = []
    recommendations = {}
    for level in (1, 2, 4):
        ath = largest_safe_ath(target_trh, level)
        if ath == 0:
            rows.append((f"L{level}", "-", "not achievable", "-", "-"))
            continue
        recommendations[level] = ath
        rows.append(
            (
                f"L{level}",
                ath,
                ratchet_safe_trh(ath, level),
                f"{moat_sram_bytes(level)} B/bank",
                f"{ath // 2}",
            )
        )
    print(
        format_table(
            ["ABO level", "max safe ATH", "tolerated TRH", "SRAM", "ETH"],
            rows,
            title="Step 1 - Largest safe ATH per ABO level (Appendix A model)",
        )
    )

    if not recommendations:
        print("\nNo configuration tolerates this threshold (see Section 5.3:")
        print("sub-50 thresholds are impractical under current ABO specs).")
        return

    print("\nStep 2 - Performance check on a hot workload (roms, full window)")
    level = min(recommendations)  # level 1 preferred (paper recommendation)
    ath = recommendations[level]
    result = run_workload(
        profile_by_name("roms"),
        MoatRunConfig(ath=ath, abo_level=level, n_trefi=4096),
    )
    print(f"  MOAT-L{level} ATH={ath}: slowdown {result.slowdown:.2%}, "
          f"{result.alerts_per_trefi:.3f} ALERTs/tREFI, "
          f"{result.mitigations_per_trefw_per_bank:.0f} mitigations/tREFW/bank")

    print("\nStep 3 - Recommendation")
    print(f"  MOAT-L{level} with ATH={ath}, ETH={ath // 2}: tolerates "
          f"T_RH={ratchet_safe_trh(ath, level)} at {moat_sram_bytes(level)} "
          f"bytes of SRAM per bank.")
    print("  (ABO level 1 is preferred: lowest stall per ALERT and the")
    print("   highest tolerated threshold per ATH — paper Section 9.)")


if __name__ == "__main__":
    main()
