"""Memory-controller hot-path microbenchmarks.

Two measurements pin the closed-loop subsystem's speed:

* ``test_mc_hotpath_throughput`` times the subsystem end to end —
  request generation, queueing, FR-FCFS scheduling, and engine
  service — and records requests/second plus the measured p99 read
  latency into ``results/summary.json``. Every round's throughput is
  computed from that round's *own* result, and the rounds must agree
  bit-for-bit (the run is deterministic by contract).
* ``test_mc_backend_speedups`` serves one pre-generated stream through
  the retained scalar reference (``run_streams_reference``) and
  through the struct-of-arrays fast path under each backend, asserts
  the completions are identical, and pins the speedups: the pure
  SoA rewrite must be at least 2x the scalar loop, and the compiled
  ``numba`` backend at least 10x (asserted only where numba is
  installed). The interpreted ``kernel`` backend is recorded but not
  gated — it exists to execute the numba kernel *code path* without
  numba, where numpy scalar indexing makes it slower than plain
  Python lists.

Like ``test_engine_hotpath.py``, this deliberately bypasses the
artifact caches: it *measures* the subsystem, so replaying a cached
number would defeat the purpose. The absolute-throughput floor is
generous — it exists to catch a catastrophic hot-path regression (an
accidental per-request re-scan, quadratic queue walk, etc.), not
scheduler noise.
"""

import dataclasses
import time

from benchmarks.conftest import FAST
from repro.mc.controller import MemoryController
from repro.obs import TraceRecorder
from repro.report.tables import format_table
from repro.sim.backend import numba_available
from repro.sim.mc import McRunConfig, build_mc_channel, run_mc
from repro.sweep.mc_spec import HAMMER_WORKLOAD
from repro.workloads.requests import generate_requests

N_TREFI = 512 if FAST else 1024
ROUNDS = 3
#: Catastrophe floor, far below the ~300k req/s a laptop core sustains
#: on the struct-of-arrays path.
REQUIRED_REQUESTS_PER_S = 2000.0
#: The struct-of-arrays rewrite of the serve loop (plain Python, no
#: compilation) against the retained scalar reference.
REQUIRED_PURE_SPEEDUP = 2.0
#: The numba-compiled kernel against the scalar reference.
REQUIRED_NUMBA_SPEEDUP = 10.0


def _hammer_config(backend=None) -> McRunConfig:
    return McRunConfig(
        ath=32, workload=HAMMER_WORKLOAD, banks=4, n_trefi=N_TREFI,
        backend=backend,
    )


def test_mc_hotpath_throughput(report, record_json):
    config = _hammer_config()

    rounds = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        result = run_mc(config)
        rounds.append((time.perf_counter() - started, result))

    # The run is deterministic: every round must produce the same
    # result, so the best round's throughput describes the same work.
    first = dataclasses.asdict(rounds[0][1])
    for _, other in rounds[1:]:
        assert dataclasses.asdict(other) == first, (
            "closed-loop run is not deterministic across rounds"
        )
    best_s, result = min(rounds, key=lambda pair: pair[0])
    requests_per_s = result.requests / best_s
    us_per_request = best_s / result.requests * 1e6

    report(
        format_table(
            ["metric", "value"],
            [
                ("requests served", f"{result.requests:,}"),
                ("requests / second", f"{requests_per_s:,.0f}"),
                ("us / request", f"{us_per_request:.2f}"),
                ("read p99 (ns, simulated)", f"{result.read_p99_ns:.1f}"),
                ("ALERTs / tREFI", f"{result.alerts_per_trefi:.3f}"),
            ],
            title="MC hot path - closed-loop requests through FR-FCFS",
        )
    )
    record_json(
        {
            "requests": result.requests,
            "requests_per_s": requests_per_s,
            "us_per_request": us_per_request,
            "read_p99_ns": result.read_p99_ns,
            "alerts_per_trefi": result.alerts_per_trefi,
            "n_trefi": N_TREFI,
            "required_requests_per_s": REQUIRED_REQUESTS_PER_S,
        },
        key="mc_hotpath",
    )
    assert requests_per_s >= REQUIRED_REQUESTS_PER_S, (
        f"mc hot path served only {requests_per_s:.0f} requests/s "
        f"(need {REQUIRED_REQUESTS_PER_S:.0f})"
    )


def test_mc_tracing_overhead(report, record_json):
    """Null-recorder tracing must be free; enabled tracing, recorded.

    The disabled path (every component on :data:`NULL_RECORDER`) is
    the path every benchmark and sweep runs; its throughput must stay
    above the catastrophe floor, and its result must be bit-identical
    to the traced run — attaching a recorder changes observations,
    never outcomes. Enabled-tracing throughput is recorded (not gated:
    collecting the full event stream legitimately costs).
    """
    config = _hammer_config()

    disabled_s = None
    disabled = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        result = run_mc(config)
        elapsed = time.perf_counter() - started
        if disabled_s is None or elapsed < disabled_s:
            disabled_s, disabled = elapsed, result

    enabled_s = None
    enabled = None
    recorder = None
    for _ in range(ROUNDS):
        fresh = TraceRecorder()
        started = time.perf_counter()
        result = run_mc(config, recorder=fresh)
        elapsed = time.perf_counter() - started
        if enabled_s is None or elapsed < enabled_s:
            enabled_s, enabled, recorder = elapsed, result, fresh

    assert dataclasses.asdict(enabled) == dataclasses.asdict(disabled), (
        "tracing changed the simulation result"
    )
    assert recorder.count("alert") == enabled.alerts, (
        "ALERT events do not reconcile with the alerts counter"
    )

    disabled_rps = disabled.requests / disabled_s
    enabled_rps = enabled.requests / enabled_s
    overhead_frac = enabled_s / disabled_s - 1.0
    report(
        format_table(
            ["path", "requests / s", "events"],
            [
                ("tracing disabled", f"{disabled_rps:,.0f}", "-"),
                ("tracing enabled", f"{enabled_rps:,.0f}",
                 f"{len(recorder):,}"),
                ("enabled overhead", f"{overhead_frac:+.1%}", ""),
            ],
            title="MC tracing - null recorder vs full event stream "
            "(bit-identical results)",
        )
    )
    record_json(
        {
            "requests": disabled.requests,
            "disabled_requests_per_s": disabled_rps,
            "enabled_requests_per_s": enabled_rps,
            "enabled_overhead_frac": overhead_frac,
            "events": len(recorder),
            "alert_events": recorder.count("alert"),
            "alerts": enabled.alerts,
            "n_trefi": N_TREFI,
            "required_requests_per_s": REQUIRED_REQUESTS_PER_S,
        },
        key="mc_tracing",
    )
    assert disabled_rps >= REQUIRED_REQUESTS_PER_S, (
        f"disabled-tracing path served only {disabled_rps:.0f} "
        f"requests/s (need {REQUIRED_REQUESTS_PER_S:.0f})"
    )


def _serve_timed(requests, backend, reference=False):
    """Best-of-N serve of one stream; returns (seconds, completions).

    A fresh channel/controller per round keeps every measurement a
    cold, pristine-channel run — the configuration the fast path
    dispatches on.
    """
    config = _hammer_config(backend=backend)
    best_s = None
    completions = None
    for _ in range(ROUNDS):
        channel = build_mc_channel(config)
        controller = MemoryController(channel, config.mc_config())
        started = time.perf_counter()
        if reference:
            served = controller.run_streams_reference([list(requests)])
            out = [(c.start_ns, c.complete_ns) for c in served]
        else:
            batch = controller.serve(list(requests))
            out = list(zip(batch.start_ns, batch.complete_ns))
        elapsed = time.perf_counter() - started
        if best_s is None or elapsed < best_s:
            best_s, completions = elapsed, out
    return best_s, completions


def test_mc_backend_speedups(report, record_json):
    config = _hammer_config()
    requests = generate_requests(
        config.workload,
        num_subchannels=config.subchannels,
        banks_per_subchannel=config.banks,
        n_trefi=config.n_trefi,
        rows_per_bank=config.rows_per_bank,
        seed=config.seed,
        trefi_ns=config.timing.t_refi,
    )

    ref_s, ref_out = _serve_timed(requests, backend=None, reference=True)
    backends = ["pure", "kernel"]
    if numba_available():
        backends.append("numba")

    rows = [
        ("scalar reference", f"{len(requests) / ref_s:,.0f}", "1.00x"),
    ]
    measured = {}
    for backend in backends:
        elapsed, out = _serve_timed(requests, backend=backend)
        assert out == ref_out, (
            f"backend {backend!r} diverged from the scalar reference"
        )
        speedup = ref_s / elapsed
        measured[backend] = {
            "requests_per_s": len(requests) / elapsed,
            "speedup_vs_reference": speedup,
        }
        rows.append(
            (backend, f"{len(requests) / elapsed:,.0f}", f"{speedup:.2f}x")
        )

    report(
        format_table(
            ["serve path", "requests / s", "speedup"],
            rows,
            title="MC backends - SoA serve loop vs scalar reference "
            f"({len(requests):,} requests, identical completions)",
        )
    )
    record_json(
        {
            "requests": len(requests),
            "reference_requests_per_s": len(requests) / ref_s,
            "backends": measured,
            "numba_available": numba_available(),
            "required_pure_speedup": REQUIRED_PURE_SPEEDUP,
            "required_numba_speedup": REQUIRED_NUMBA_SPEEDUP,
        },
        key="mc_backends",
    )
    pure = measured["pure"]["speedup_vs_reference"]
    assert pure >= REQUIRED_PURE_SPEEDUP, (
        f"pure SoA serve loop only {pure:.2f}x the scalar reference "
        f"(need {REQUIRED_PURE_SPEEDUP}x)"
    )
    if numba_available():
        compiled = measured["numba"]["speedup_vs_reference"]
        assert compiled >= REQUIRED_NUMBA_SPEEDUP, (
            f"numba serve loop only {compiled:.2f}x the scalar "
            f"reference (need {REQUIRED_NUMBA_SPEEDUP}x)"
        )
