"""Memory-controller hot-path microbenchmark.

Times the closed-loop subsystem end to end — request generation,
queueing, FR-FCFS scheduling, and engine service — and records
requests/second plus the measured p99 read latency into
``results/summary.json``, so the BENCH trajectory captures the new
subsystem's speed (and its headline latency metric) from day one.

Like ``test_engine_hotpath.py``, this deliberately bypasses the
artifact caches: it *measures* the subsystem, so replaying a cached
number would defeat the purpose. The throughput floor is generous —
it exists to catch a catastrophic hot-path regression (an accidental
per-request re-scan, quadratic queue walk, etc.), not scheduler noise.
"""

import time

from benchmarks.conftest import FAST
from repro.report.tables import format_table
from repro.sim.mc import McRunConfig, run_mc
from repro.sweep.mc_spec import HAMMER_WORKLOAD

N_TREFI = 512 if FAST else 1024
ROUNDS = 3
#: Catastrophe floor, far below the ~80k req/s a laptop core sustains.
REQUIRED_REQUESTS_PER_S = 2000.0


def test_mc_hotpath_throughput(report, record_json):
    config = McRunConfig(
        ath=32, workload=HAMMER_WORKLOAD, banks=4, n_trefi=N_TREFI
    )

    best_s = None
    result = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        result = run_mc(config)
        elapsed = time.perf_counter() - started
        if best_s is None or elapsed < best_s:
            best_s = elapsed
    requests_per_s = result.requests / best_s
    us_per_request = best_s / result.requests * 1e6

    report(
        format_table(
            ["metric", "value"],
            [
                ("requests served", f"{result.requests:,}"),
                ("requests / second", f"{requests_per_s:,.0f}"),
                ("us / request", f"{us_per_request:.2f}"),
                ("read p99 (ns, simulated)", f"{result.read_p99_ns:.1f}"),
                ("ALERTs / tREFI", f"{result.alerts_per_trefi:.3f}"),
            ],
            title="MC hot path - closed-loop requests through FR-FCFS",
        )
    )
    record_json(
        {
            "requests": result.requests,
            "requests_per_s": requests_per_s,
            "us_per_request": us_per_request,
            "read_p99_ns": result.read_p99_ns,
            "alerts_per_trefi": result.alerts_per_trefi,
            "n_trefi": N_TREFI,
            "required_requests_per_s": REQUIRED_REQUESTS_PER_S,
        },
        key="mc_hotpath",
    )
    assert requests_per_s >= REQUIRED_REQUESTS_PER_S, (
        f"mc hot path served only {requests_per_s:.0f} requests/s "
        f"(need {REQUIRED_REQUESTS_PER_S:.0f})"
    )
