"""Figure 12: Torrent-of-Staggered-ALERT throughput loss vs bank count.

Staggering banks' ALERT chains ensures every ALERT mitigates exactly
one row, turning the ALERT stall into a dense torrent: the paper's unit
model gives 24% loss at 4 banks and 52% at the tFAW-limited 17 banks.
"""

from benchmarks.conftest import FAST
from repro.attacks.tsa import run_tsa
from repro.report.paper_values import TSA_LOSS
from repro.report.tables import format_table

BANKS = [1, 4, 8, 17]


def test_fig12_tsa(benchmark, report):
    cycles = 2 if FAST else 3

    def sweep():
        return {b: run_tsa(num_banks=b, cycles=cycles) for b in BANKS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (
            b,
            f"{TSA_LOSS[b] * 100:.0f}%" if b in TSA_LOSS else "",
            f"{results[b].details['throughput_loss'] * 100:.1f}%",
            results[b].alerts,
        )
        for b in BANKS
    ]
    report(
        format_table(
            ["banks", "paper loss", "measured loss", "ALERTs"],
            rows,
            title="Figure 12 - TSA attack",
        )
    )
    losses = [results[b].details["throughput_loss"] for b in BANKS]
    # Loss grows with the number of staggered banks...
    assert losses == sorted(losses)
    # ...lands near the paper's 24% at 4 banks...
    assert abs(results[4].details["throughput_loss"] - TSA_LOSS[4]) < 0.10
    # ...and stays below the continuous-ALERT ceiling (Section 7.1).
    assert losses[-1] < 0.64
