"""Figure 12: Torrent-of-Staggered-ALERT throughput loss vs bank count.

Staggering banks' ALERT chains ensures every ALERT mitigates exactly
one row, turning the ALERT stall into a dense torrent: the paper's unit
model gives 24% loss at 4 banks and 52% at the tFAW-limited 17 banks.

Pulls from the cached ``attack:fig12`` artifact via the figure
registry.
"""

from benchmarks.conftest import figure_text, run_figure
from repro.report.paper_values import TSA_LOSS

BANKS = [1, 4, 8, 17]


def test_fig12_tsa(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("fig12"), rounds=1, iterations=1
    )
    report(figure_text(result))
    points = result.artifacts["attack:fig12"]["points"].values()
    losses = {
        p["params"]["num_banks"]: p["metrics"]["detail:throughput_loss"]
        for p in points
    }
    assert sorted(losses) == BANKS
    # Loss grows with the number of staggered banks...
    ordered = [losses[b] for b in BANKS]
    assert ordered == sorted(ordered)
    # ...lands near the paper's 24% at 4 banks...
    assert abs(losses[4] - TSA_LOSS[4]) < 0.10
    # ...and stays below the continuous-ALERT ceiling (Section 7.1).
    assert ordered[-1] < 0.64
