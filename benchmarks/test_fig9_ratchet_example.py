"""Figure 9: Ratchet on a 4-row pool at ABO level 4 (single-entry MOAT).

The figure's idealized bookkeeping reaches ATH+15; the simulator
executes the same scenario (footnote 1's misconfigured MR71 case:
single-entry tracker, 7 permitted ACTs per ALERT) with exact DDR5
timing, landing in the same regime (well above ATH, bounded by the
Appendix A model for this pool size).
"""

from repro.attacks.ratchet import run_ratchet
from repro.report.paper_values import FIG9_EXTRA_ACTS
from repro.report.tables import format_table

ATH = 64


def test_fig9_ratchet_four_rows(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_ratchet(ath=ATH, pool_size=4, abo_level=4, tracker_level=1),
        rounds=1,
        iterations=1,
    )
    extra = result.acts_on_attack_row - ATH
    rows = [
        ("ACTs beyond ATH on last row", f"+{FIG9_EXTRA_ACTS} (idealized)", f"+{extra}"),
        ("total on last row", ATH + FIG9_EXTRA_ACTS, result.acts_on_attack_row),
        ("ALERTs in chain", 4, result.alerts),
    ]
    report(format_table(["metric", "paper", "measured"], rows, title="Figure 9 - Ratchet on 4 rows (level 4)"))
    # The attack must beat ATH by at least the final inter-ALERT burst.
    assert extra >= 7
    # ...and stay within the same regime as the figure's +15.
    assert extra <= 2 * FIG9_EXTRA_ACTS
