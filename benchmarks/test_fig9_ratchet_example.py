"""Figure 9: Ratchet on a 4-row pool at ABO level 4 (single-entry MOAT).

The figure's idealized bookkeeping reaches ATH+15; the simulator
executes the same scenario (footnote 1's misconfigured MR71 case:
single-entry tracker, 7 permitted ACTs per ALERT) with exact DDR5
timing, landing in the same regime (well above ATH, bounded by the
Appendix A model for this pool size).

Pulls from the cached ``attack:fig9`` artifact via the figure registry.
"""

from benchmarks.conftest import figure_text, rows_by_label, run_figure
from repro.report.paper_values import FIG9_EXTRA_ACTS


def test_fig9_ratchet_four_rows(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("fig9"), rounds=1, iterations=1
    )
    report(figure_text(result))
    rows = rows_by_label(result)
    extra = rows["ACTs beyond ATH on last row"].measured
    # The attack must beat ATH by at least the final inter-ALERT burst.
    assert extra >= 7
    # ...and stay within the same regime as the figure's +15.
    assert extra <= 2 * FIG9_EXTRA_ACTS
    assert rows["ALERTs in chain"].measured == 4
