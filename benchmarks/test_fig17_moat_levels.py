"""Figure 17 / Appendix D: MOAT-L1/L2/L4 performance and ALERT rate.

Higher ABO levels stall longer per ALERT (more RFMs) but mitigate more
rows per ALERT, so they trade slightly higher slowdown for a lower
ALERT count.
"""

from benchmarks.conftest import all_profiles, run_one
from repro.report.paper_values import FIG17_SLOWDOWN
from repro.report.tables import format_table

LEVELS = [1, 2, 4]


def test_fig17_moat_levels(benchmark, report, schedules):
    profiles = all_profiles()

    def sweep():
        return {
            level: {p.name: run_one(p, schedules, ath=64, abo_level=level) for p in profiles}
            for level in LEVELS
        }

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for level in LEVELS:
        results = table[level].values()
        slowdown = sum(r.slowdown for r in results) / len(profiles)
        rate = sum(r.alerts_per_trefi for r in results) / len(profiles)
        rows.append(
            (
                f"MOAT-L{level}",
                f"{FIG17_SLOWDOWN[level] * 100:.2f}%",
                f"{slowdown * 100:.3f}%",
                f"{rate:.4f}",
            )
        )
    report(
        format_table(
            ["design", "paper slowdown", "measured", "ALERT/tREFI"],
            rows,
            title="Figure 17 - MOAT at ABO levels 1/2/4 (ATH=64)",
        )
    )
    # Shape: ALERT episodes do not grow with level (each services more
    # rows; 15% slack absorbs fixed-point noise), and all levels stay
    # well under 1% average slowdown.
    rate = {
        level: sum(r.alerts_per_trefi for r in table[level].values())
        for level in LEVELS
    }
    assert rate[4] <= rate[1] * 1.15 + 0.01
    for level in LEVELS:
        avg_slow = sum(r.slowdown for r in table[level].values()) / len(profiles)
        assert avg_slow < 0.01
