"""Figure 17 / Appendix D: MOAT-L1/L2/L4 performance and ALERT rate.

Higher ABO levels stall longer per ALERT (more RFMs) but mitigate more
rows per ALERT, so they trade slightly higher slowdown for a lower
ALERT count.

Pulls from the cached ``sweep:fig17`` artifact via the figure registry
— the same grid ``repro sweep fig17`` and ``repro report run fig17``
execute — so the benchmark, the CLI, and the CI baseline gate share one
code path and one result cache.
"""

from benchmarks.conftest import FAST, figure_text, record_figure, run_figure

LEVELS = [1, 2, 4]


def test_fig17_moat_levels(benchmark, report, record_json):
    result = benchmark.pedantic(
        lambda: run_figure("fig17"), rounds=1, iterations=1
    )
    report(figure_text(result))
    record_figure(record_json, result, key="fig17")

    points = list(result.artifacts["sweep:fig17"]["points"].values())
    by_level = {
        level: [p["metrics"] for p in points if p["abo_level"] == level]
        for level in LEVELS
    }
    for level in LEVELS:
        assert by_level[level], f"no points at level {level}"

    # Shape: ALERT episodes do not grow with level (each services more
    # rows; 15% slack absorbs fixed-point noise)...
    rate = {
        level: sum(m["alerts_per_trefi"] for m in by_level[level])
        for level in LEVELS
    }
    assert rate[4] <= rate[1] * 1.15 + 0.01
    # ...and the average slowdown stays small at every level. The full
    # 21-workload figure sits well under 1% (paper: 0.28-0.45%).
    # REPRO_FAST keeps only the hot-biased workload subset — the quiet
    # majority that pulls the figure's average down is dropped — and
    # higher ABO levels amplify exactly those hot workloads' ALERT
    # stalls (L4 averages ~2.7% on the subset), so the FAST bound gets
    # a 4x scale allowance where Figure 11 (level 1 only) needs 2x.
    bound = 0.04 if FAST else 0.01
    for level in LEVELS:
        avg_slow = sum(m["slowdown"] for m in by_level[level]) / len(
            by_level[level]
        )
        assert avg_slow < bound
