"""Table 4: workload characteristics (ACT-PKI and hot-row histogram).

Generates every workload's synthetic activation stream and measures the
per-tREFW hot-row counts, confirming the generator is calibrated to the
published characteristics.
"""

import pytest

from benchmarks.conftest import all_profiles
from repro.report.tables import format_table
from repro.workloads.generator import measure_characteristics


def test_table4_characteristics(benchmark, report, schedules):
    profiles = all_profiles()

    def measure_all():
        return {
            p.name: measure_characteristics(schedules.get(p)) for p in profiles
        }

    measured = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    rows = []
    for p in profiles:
        m = measured[p.name]
        rows.append(
            (
                p.display_name,
                p.act_pki,
                f"{p.act_32_plus}/{p.act_64_plus}/{p.act_128_plus}",
                f"{m['act_32_plus']:.0f}/{m['act_64_plus']:.0f}/{m['act_128_plus']:.0f}",
            )
        )
    report(
        format_table(
            ["workload", "ACT-PKI", "paper 32+/64+/128+", "measured 32+/64+/128+"],
            rows,
            title="Table 4 - Workload characteristics",
        )
    )
    for p in profiles:
        m = measured[p.name]
        assert m["act_32_plus"] == pytest.approx(p.act_32_plus, rel=0.08, abs=4)
        assert m["act_64_plus"] == pytest.approx(p.act_64_plus, rel=0.08, abs=4)
        assert m["act_128_plus"] == pytest.approx(p.act_128_plus, rel=0.08, abs=4)
