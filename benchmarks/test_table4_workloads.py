"""Table 4: workload characteristics (ACT-PKI and hot-row histogram).

Generates every workload's synthetic activation stream and measures the
per-tREFW hot-row counts, confirming the generator is calibrated to the
published characteristics.

Pulls from the cached ``model:table4`` artifact via the figure registry
(one ``workload-stats`` point per workload at the harness scale).
"""

import pytest

from benchmarks.conftest import figure_text, run_figure


def test_table4_characteristics(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("table4"), rounds=1, iterations=1
    )
    report(figure_text(result))
    points = list(result.artifacts["model:table4"]["points"].values())
    assert points
    for point in points:
        metrics = point["metrics"]
        workload = point["params"]["workload"]
        for threshold in (32, 64, 128):
            measured = metrics[f"act_{threshold}_plus"]
            paper = metrics[f"paper_act_{threshold}_plus"]
            assert measured == pytest.approx(paper, rel=0.08, abs=4), (
                workload,
                threshold,
            )
