"""Table 6 / Appendix C: impact of the proactive mitigation rate.

Faster proactive mitigation (one aggressor per fewer tREFI) leaves less
work for ALERTs; with no proactive mitigation at all, every hot row is
serviced reactively.

Pulls from the cached ``sweep:table6`` artifact via the figure
registry.
"""

from benchmarks.conftest import figure_text, run_figure

RATES = [1, 3, 5, 10, 0]  # 0 encodes "none (ALERT only)"


def test_table6_mitigation_rate(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("table6"), rounds=1, iterations=1
    )
    report(figure_text(result))

    points = list(result.artifacts["sweep:table6"]["points"].values())
    table = {}
    for rate in RATES:
        metrics = [
            p["metrics"] for p in points if p["trefi_per_mitigation"] == rate
        ]
        assert metrics, f"no points at rate {rate}"
        table[rate] = sum(m["slowdown"] for m in metrics) / len(metrics)

    # Shape: slowdown grows as the proactive rate drops (the fixed
    # point's discreteness allows some noise between adjacent rates,
    # hence the slack on the tail comparisons).
    assert table[1] <= table[5]
    assert table[5] <= max(table[10], table[0]) + 0.002
    assert max(table[10], table[0]) >= table[1]
    assert table[0] >= 0.5 * table[10] - 0.002
