"""Table 6 / Appendix C: impact of the proactive mitigation rate.

Faster proactive mitigation (one aggressor per fewer tREFI) leaves less
work for ALERTs; with no proactive mitigation at all, every hot row is
serviced reactively.
"""

from benchmarks.conftest import run_one, sweep_profiles
from repro.report.paper_values import TABLE6_MITIGATION_RATE
from repro.report.tables import format_table

RATES = [1, 3, 5, 10, 0]  # 0 encodes "none (ALERT only)"


def test_table6_mitigation_rate(benchmark, report, schedules):
    profiles = sweep_profiles()

    def sweep():
        table = {}
        for rate in RATES:
            results = [
                run_one(p, schedules, ath=64, trefi_per_mitigation=rate)
                for p in profiles
            ]
            table[rate] = sum(r.slowdown for r in results) / len(results)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (
            "none (ALERT only)" if rate == 0 else f"1 per {rate} tREFI",
            f"{TABLE6_MITIGATION_RATE[rate] * 100:.2f}%",
            f"{table[rate] * 100:.2f}%",
        )
        for rate in RATES
    ]
    report(
        format_table(
            ["mitigation rate", "paper slowdown", "measured"],
            rows,
            title="Table 6 - Mitigation-rate sweep at ATH=64 (sweep subset)",
        )
    )
    # Shape: slowdown grows as the proactive rate drops (the fixed
    # point's discreteness allows some noise between adjacent rates,
    # hence the slack on the tail comparisons).
    assert table[1] <= table[5]
    assert table[5] <= max(table[10], table[0]) + 0.002
    assert max(table[10], table[0]) >= table[1]
    assert table[0] >= 0.5 * table[10] - 0.002
