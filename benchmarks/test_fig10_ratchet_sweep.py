"""Figure 10: max ACTs on the attack row vs ATH (Ratchet, ABO level 1).

The analytical model reproduces the published curve (99 at ATH=64, 161
at ATH=128); the simulated attack validates that concrete executions
stay at-or-below the model while exceeding ATH.
"""

from benchmarks.conftest import FAST
from repro.analysis.ratchet_model import RatchetModel, ratchet_safe_trh
from repro.attacks.ratchet import run_ratchet
from repro.report.paper_values import FIG10_SAFE_TRH
from repro.report.tables import format_table

ATH_SWEEP = [16, 32, 48, 64, 80, 96, 112, 128]


def test_fig10_model_curve(benchmark, report):
    curve = benchmark.pedantic(
        lambda: {ath: ratchet_safe_trh(ath, 1) for ath in ATH_SWEEP},
        rounds=1,
        iterations=1,
    )
    rows = [
        (ath, FIG10_SAFE_TRH.get(ath, ""), curve[ath]) for ath in ATH_SWEEP
    ]
    report(
        format_table(
            ["ATH", "paper", "model max ACT"],
            rows,
            title="Figure 10 - Ratchet bound vs ATH (level 1)",
        )
    )
    assert curve[64] == 99
    assert curve[128] == 161
    values = [curve[a] for a in ATH_SWEEP]
    assert values == sorted(values)


def test_fig10_simulated_points(benchmark, report):
    pool = 64 if FAST else 256

    def attack():
        return {
            ath: run_ratchet(ath=ath, pool_size=pool).acts_on_attack_row
            for ath in (32, 64, 128)
        }

    measured = benchmark.pedantic(attack, rounds=1, iterations=1)
    model = RatchetModel(level=1)
    rows = [
        (ath, model.safe_trh(ath), measured[ath]) for ath in (32, 64, 128)
    ]
    report(
        format_table(
            ["ATH", "model bound", f"simulated (pool={pool})"],
            rows,
            title="Figure 10 - Simulated Ratchet vs model",
        )
    )
    for ath in (32, 64, 128):
        assert ath + 4 <= measured[ath] <= model.safe_trh(ath) + 1
