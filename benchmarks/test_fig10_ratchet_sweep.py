"""Figure 10: max ACTs on the attack row vs ATH (Ratchet, ABO level 1).

The analytical model reproduces the published curve (99 at ATH=64, 161
at ATH=128); the simulated attack validates that concrete executions
stay at-or-below the model while exceeding ATH.

Pulls from the cached ``attack:fig10`` and ``model:fig15`` artifacts
via the figure registry.
"""

from benchmarks.conftest import figure_text, run_figure
from repro.report.paper_values import FIG10_SAFE_TRH
from repro.sweep.model_spec import SAFE_TRH_ATH_SWEEP


def _model_curve(result, level=1):
    points = result.artifacts["model:fig15"]["points"].values()
    return {
        p["params"]["ath"]: p["metrics"]["safe_trh"]
        for p in points
        if p["params"]["level"] == level
    }


def _simulated(result):
    points = result.artifacts["attack:fig10"]["points"].values()
    return {
        p["params"]["ath"]: p["metrics"]["acts_on_attack_row"]
        for p in points
        if p["kind"] == "ratchet" and p["params"].get("pool_size") == 64
    }


def test_fig10_model_curve(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("fig10"), rounds=1, iterations=1
    )
    report(figure_text(result))
    curve = _model_curve(result)
    assert curve[64] == FIG10_SAFE_TRH[64] == 99
    assert curve[128] == FIG10_SAFE_TRH[128] == 161
    values = [curve[ath] for ath in SAFE_TRH_ATH_SWEEP]
    assert values == sorted(values)


def test_fig10_simulated_points(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("fig10"), rounds=1, iterations=1
    )
    curve = _model_curve(result)
    measured = _simulated(result)
    report(
        "Figure 10 - Simulated Ratchet vs model bound: "
        + ", ".join(
            f"ATH={ath}: {int(measured[ath])}<={int(curve[ath])}"
            for ath in sorted(measured)
        )
    )
    for ath in (32, 64, 128):
        assert ath + 4 <= measured[ath] <= curve[ath] + 1
