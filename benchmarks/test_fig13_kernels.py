"""Figure 13 / Section 7.1-7.2: basic performance-attack kernels.

Single-row and multi-row hammering both lose throughput at ATH=64 (the
paper reports ~10% at its trace lengths); the analytical models give
the ALERT-window throughput (0.36x at level 1) and the continuous-ALERT
slowdown ceiling per ABO level.

Pulls from the cached ``attack:fig13`` and ``model:sec71`` artifacts
via the figure registry.
"""

import pytest

from benchmarks.conftest import figure_text, rows_by_label, run_figure


def test_fig13_kernels_simulated(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("fig13"), rounds=1, iterations=1
    )
    report(figure_text(result))
    rows = rows_by_label(result)
    single = rows["(A)^N single-row loss @ ATH=64"].measured
    multi = rows["(ABCDE)^N multi-row loss @ ATH=64"].measured
    assert 0.03 <= single <= 0.15
    assert 0.03 <= multi <= 0.15
    # Loss shrinks as ATH grows (fewer ALERTs per activation).
    assert (
        rows["single-row loss @ ATH=32"].measured
        > single
        > rows["single-row loss @ ATH=128"].measured
    )


def test_sec71_alert_window_models(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("sec71"), rounds=1, iterations=1
    )
    report(figure_text(result))
    for row in result.rows:
        assert row.measured == pytest.approx(row.paper, rel=0.02), row.label
