"""Figure 13 / Section 7.1-7.2: basic performance-attack kernels.

Single-row and multi-row hammering both lose ~10% throughput at ATH=64;
the analytical models give the ALERT-window throughput (0.36x at level
1) and the continuous-ALERT slowdown ceiling per ABO level.
"""

import pytest

from repro.analysis.throughput import (
    alert_window_throughput,
    continuous_alert_slowdown,
    mixed_throughput,
    single_bank_attack_throughput,
)
from repro.attacks.kernels import run_multi_row_kernel, run_single_row_kernel
from repro.report.paper_values import (
    ALERT_WINDOW_THROUGHPUT_L1,
    CONTINUOUS_ALERT_SLOWDOWN,
    KERNEL_THROUGHPUT_LOSS,
)
from repro.report.tables import format_table


def test_fig13_kernels_simulated(benchmark, report):
    def attack():
        return (
            run_single_row_kernel(ath=64, total_acts=20_000),
            run_multi_row_kernel(rows=5, ath=64, total_acts=20_000),
        )

    single, multi = benchmark.pedantic(attack, rounds=1, iterations=1)
    model = 1.0 - single_bank_attack_throughput(ath=64)
    rows = [
        ("(A)^N single-row", f"{KERNEL_THROUGHPUT_LOSS:.0%}",
         f"{single.details['throughput_loss']:.1%}"),
        ("(ABCDE)^N multi-row", f"{KERNEL_THROUGHPUT_LOSS:.0%}",
         f"{multi.details['throughput_loss']:.1%}"),
        ("analytical (stall-only)", f"{KERNEL_THROUGHPUT_LOSS:.0%}", f"{model:.1%}"),
    ]
    report(format_table(["kernel", "paper", "measured"], rows, title="Figure 13 - Attack kernels (ATH=64)"))
    assert 0.03 <= single.details["throughput_loss"] <= 0.15
    assert 0.03 <= multi.details["throughput_loss"] <= 0.15


def test_sec71_alert_window_models(benchmark, report):
    values = benchmark.pedantic(
        lambda: {
            "window": alert_window_throughput(1),
            "mixed10": mixed_throughput(0.1),
            "slowdowns": {l: continuous_alert_slowdown(l) for l in (1, 2, 4)},
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        ("ACTs/unit during ALERT (L1)", f"{ALERT_WINDOW_THROUGHPUT_L1:.2f}", f"{values['window']:.2f}"),
        ("throughput @10% ALERT time", "0.936", f"{values['mixed10']:.3f}"),
    ]
    for level in (1, 2, 4):
        rows.append(
            (
                f"continuous-ALERT slowdown (L{level})",
                f"{CONTINUOUS_ALERT_SLOWDOWN[level]}x",
                f"{values['slowdowns'][level]:.1f}x",
            )
        )
    report(format_table(["quantity", "paper", "model"], rows, title="Section 7.1 / Appendix D - ALERT throughput"))
    assert values["window"] == pytest.approx(ALERT_WINDOW_THROUGHPUT_L1, rel=0.02)
    for level in (1, 2, 4):
        assert values["slowdowns"][level] == pytest.approx(
            CONTINUOUS_ALERT_SLOWDOWN[level], rel=0.02
        )
