"""Table 1: DRAM timing parameters (revised DDR5 / JESD79-5C).

Pulls from the cached ``model:table1`` artifact via the figure
registry.
"""

from benchmarks.conftest import figure_text, rows_by_label, run_figure


def test_table1_timings(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("table1"), rounds=1, iterations=1
    )
    report(figure_text(result))
    rows = rows_by_label(result)
    assert rows["acts_per_trefi"].measured == 67
    # Every published timing identity reproduces within 1% (tREFW is
    # 8192 x 3900 ns = 31.95 ms against the paper's rounded 32 ms).
    for row in result.rows:
        assert abs(row.rel_delta) < 0.01, row.label
