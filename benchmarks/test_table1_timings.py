"""Table 1: DRAM timing parameters (revised DDR5 / JESD79-5C)."""

from repro.dram.timing import DDR5_PRAC_TIMING
from repro.report.tables import paper_vs_measured


def test_table1_timings(benchmark, report):
    timing = benchmark.pedantic(lambda: DDR5_PRAC_TIMING, rounds=1, iterations=1)
    rows = [
        ("tACT (ns)", 12, timing.t_act),
        ("tPRE (ns)", 36, timing.t_pre),
        ("tRAS (ns)", 16, timing.t_ras),
        ("tRC (ns)", 52, timing.t_rc),
        ("tREFW (ms)", 32, round(timing.t_refw / 1e6, 2)),
        ("tREFI (ns)", 3900, timing.t_refi),
        ("tRFC (ns)", 410, timing.t_rfc),
        ("ACTs per tREFI", 67, timing.acts_per_trefi),
        ("REFs per tREFW", 8192, timing.refs_per_refw),
        ("mitigations per tREFW (1/5 tREFI)", 1638, timing.mitigations_per_refw(5)),
    ]
    report(paper_vs_measured("Table 1 - DRAM timings", "parameter", rows))
    assert timing.acts_per_trefi == 67
