"""Figure 8: minimum activations between consecutive ALERTs."""

from repro.abo.protocol import AboConfig
from repro.report.paper_values import FIG8_MIN_ACTS
from repro.report.tables import paper_vs_measured


def test_fig8_min_acts(benchmark, report):
    configs = benchmark.pedantic(
        lambda: {level: AboConfig(level=level) for level in (1, 2, 4)},
        rounds=1,
        iterations=1,
    )
    rows = [
        (f"ABO level {level}", FIG8_MIN_ACTS[level], configs[level].min_acts_between_alerts)
        for level in (1, 2, 4)
    ]
    report(paper_vs_measured("Figure 8 - Min ACTs between ALERTs", "configuration", rows))
    for level in (1, 2, 4):
        assert configs[level].min_acts_between_alerts == FIG8_MIN_ACTS[level]
        assert configs[level].pre_rfm_acts == 3
