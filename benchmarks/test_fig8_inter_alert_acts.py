"""Figure 8: minimum activations between consecutive ALERTs.

Pulls from the cached ``model:fig8`` artifact via the figure registry.
"""

from benchmarks.conftest import figure_text, run_figure
from repro.report.paper_values import FIG8_MIN_ACTS


def test_fig8_min_acts(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("fig8"), rounds=1, iterations=1
    )
    report(figure_text(result))
    for row in result.rows:
        assert row.measured == row.paper
    points = result.artifacts["model:fig8"]["points"].values()
    for point in points:
        level = point["params"]["level"]
        assert point["metrics"]["min_acts_between_alerts"] == FIG8_MIN_ACTS[level]
        assert point["metrics"]["pre_rfm_acts"] == 3
