"""Figure 16 / Appendix B: refresh postponement vs drain-all Panopticon.

Pulls from the cached ``attack:fig16`` artifact via the figure
registry (thresholds 64/128/256 in one attack preset).
"""

from benchmarks.conftest import figure_text, run_figure
from repro.report.paper_values import (
    POSTPONEMENT_ACTS,
    POSTPONEMENT_ACTS_BETWEEN_BATCHES,
)


def _acts_by_threshold(result):
    points = result.artifacts["attack:fig16"]["points"].values()
    return {
        p["params"]["threshold"]: p["metrics"]["acts_on_attack_row"]
        for p in points
    }


def test_fig16_postponement(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("fig16"), rounds=1, iterations=1
    )
    report(figure_text(result))
    acts = _acts_by_threshold(result)
    assert abs(acts[128] - POSTPONEMENT_ACTS) <= 5


def test_fig16_scaling_with_threshold(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("fig16"), rounds=1, iterations=1
    )
    acts = _acts_by_threshold(result)
    report(
        "Figure 16 - Postponement vs threshold: "
        + ", ".join(f"thr {t}: {int(acts[t])}" for t in sorted(acts))
    )
    for threshold in (64, 128, 256):
        expected = threshold + POSTPONEMENT_ACTS_BETWEEN_BATCHES
        assert abs(acts[threshold] - expected) <= 5
