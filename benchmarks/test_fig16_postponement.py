"""Figure 16 / Appendix B: refresh postponement vs drain-all Panopticon."""

from repro.attacks.postponement import run_postponement_attack
from repro.report.paper_values import (
    POSTPONEMENT_ACTS,
    POSTPONEMENT_ACTS_BETWEEN_BATCHES,
)
from repro.report.tables import format_table


def test_fig16_postponement(benchmark, report):
    result = benchmark.pedantic(run_postponement_attack, rounds=1, iterations=1)
    rows = [
        ("ACTs on attack row", POSTPONEMENT_ACTS, result.acts_on_attack_row),
        ("x queueing threshold", 2.6, round(result.acts_on_attack_row / 128, 1)),
        ("ACT window between batches", POSTPONEMENT_ACTS_BETWEEN_BATCHES,
         result.acts_on_attack_row - 128),
    ]
    report(
        format_table(
            ["metric", "paper", "measured"],
            rows,
            title="Figure 16 - Refresh postponement vs drain-all Panopticon",
        )
    )
    assert abs(result.acts_on_attack_row - POSTPONEMENT_ACTS) <= 5


def test_fig16_scaling_with_threshold(benchmark, report):
    results = benchmark.pedantic(
        lambda: {t: run_postponement_attack(threshold=t) for t in (64, 128, 256)},
        rounds=1,
        iterations=1,
    )
    rows = [
        (t, t + POSTPONEMENT_ACTS_BETWEEN_BATCHES, results[t].acts_on_attack_row)
        for t in (64, 128, 256)
    ]
    report(
        format_table(
            ["queue threshold", "expected (thr + 201)", "measured"],
            rows,
            title="Figure 16 - Postponement attack vs threshold",
        )
    )
    for t in (64, 128, 256):
        assert abs(results[t].acts_on_attack_row - (t + 201)) <= 5
