"""Table 2: Feinting T_RH bound for per-row counters.

Reproduces both the analytical bound (n * H(M)) and the simulated
feinting attack against the idealized per-row tracker for every
mitigation rate the paper sweeps.

Pulls from the cached ``attack:table2`` (simulation, 512-period prefix)
and ``model:table2-bound`` (closed form) artifacts via the figure
registry.
"""

import pytest

from benchmarks.conftest import figure_text, run_figure
from repro.report.paper_values import TABLE2_FEINTING

RATES = [1, 2, 3, 4, 5]


def _bounds(result, periods=None):
    points = result.artifacts["model:table2-bound"]["points"].values()
    return {
        p["params"]["trefi_per_mitigation"]: p["metrics"]["bound"]
        for p in points
        if p["params"].get("periods") == periods
    }


def test_table2_analytical(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("table2"), rounds=1, iterations=1
    )
    report(figure_text(result))
    bounds = _bounds(result)
    for rate in RATES:
        assert bounds[rate] == pytest.approx(TABLE2_FEINTING[rate], rel=0.01)


def test_table2_simulated(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("table2"), rounds=1, iterations=1
    )
    prefix_bounds = _bounds(result, periods=512)
    points = result.artifacts["attack:table2"]["points"].values()
    measured = {
        p["params"]["trefi_per_mitigation"]: p["metrics"][
            "acts_on_attack_row"
        ]
        for p in points
    }
    report(
        "Table 2 - simulated feinting vs 512-period bound: "
        + ", ".join(
            f"k={k}: {int(measured[k])}/{prefix_bounds[k]:.0f}"
            for k in RATES
        )
    )
    for rate in RATES:
        # The discrete attack tracks the harmonic bound from below,
        # within one mitigation period's worth of activations.
        assert measured[rate] >= 0.8 * prefix_bounds[rate]
        assert measured[rate] <= prefix_bounds[rate] + 67 * rate
