"""Table 2: Feinting T_RH bound for per-row counters.

Reproduces both the analytical bound (n * H(M)) and the simulated
feinting attack against the idealized per-row tracker for every
mitigation rate the paper sweeps.
"""

import pytest

from repro.analysis.feinting_model import PAPER_TABLE2, feinting_bound
from repro.attacks.feinting import run_feinting
from repro.report.tables import paper_vs_measured

RATES = [1, 2, 3, 4, 5]


def test_table2_analytical(benchmark, report):
    bounds = benchmark.pedantic(
        lambda: {k: feinting_bound(k) for k in RATES}, rounds=1, iterations=1
    )
    rows = [
        (f"1 aggressor per {k} tREFI", PAPER_TABLE2[k], round(bounds[k]))
        for k in RATES
    ]
    report(paper_vs_measured("Table 2 - Feinting bound (analytical)", "mitigation rate", rows))
    for k in RATES:
        assert bounds[k] == pytest.approx(PAPER_TABLE2[k], rel=0.01)


def test_table2_simulated(benchmark, report):
    def attack_all():
        # 512 periods per rate: the harmonic sum is within ~12% of the
        # full-window value and the attack shape is identical.
        return {
            k: run_feinting(trefi_per_mitigation=k, periods=512).acts_on_attack_row
            for k in RATES
        }

    measured = benchmark.pedantic(attack_all, rounds=1, iterations=1)
    rows = []
    for k in RATES:
        bound = 67 * k * sum(1.0 / i for i in range(1, 513))
        rows.append((f"1 per {k} tREFI (512 periods)", round(bound), measured[k]))
    report(
        paper_vs_measured(
            "Table 2 - Feinting attack simulation vs scaled bound",
            "mitigation rate",
            rows,
            value_headers=("bound", "simulated"),
        )
    )
    for k in RATES:
        bound = 67 * k * sum(1.0 / i for i in range(1, 513))
        assert measured[k] >= 0.8 * bound
        assert measured[k] <= bound + 67 * k
