"""Figure 5: breaking deterministic and randomized Panopticon.

The deterministic Jailbreak reaches ~9x the queueing threshold in one
shot; the randomized variant gets there probabilistically, improving
with the number of iterations (success probability 2^-16 per
iteration).

Pulls from the cached ``attack:fig5`` and ``model:fig5-curve``
artifacts via the figure registry: the deterministic attacks and the
fully-simulated all-heavy iteration live in the attack preset, the
sampled iteration curve in the model preset.
"""

from benchmarks.conftest import figure_text, rows_by_label, run_figure
from repro.report.paper_values import JAILBREAK_QUEUE_THRESHOLD


def _curve(result):
    points = result.artifacts["model:fig5-curve"]["points"].values()
    return {
        p["params"]["iterations"]: p["metrics"]["best_acts"] for p in points
    }


def test_fig5_deterministic(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("fig5"), rounds=1, iterations=1
    )
    report(figure_text(result))
    rows = rows_by_label(result)
    assert (
        rows["deterministic ACTs on attack row"].measured
        >= 8.5 * JAILBREAK_QUEUE_THRESHOLD
    )
    assert rows["deterministic ALERTs"].measured == 0


def test_fig5_randomized_curve(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("fig5"), rounds=1, iterations=1
    )
    curve = _curve(result)
    report(
        "Figure 5 - Randomized Jailbreak curve: "
        + ", ".join(f"2^{n.bit_length() - 1}: {int(v)}"
                    for n, v in sorted(curve.items()))
    )
    assert max(curve.values()) >= 8 * JAILBREAK_QUEUE_THRESHOLD
    # More iterations can only improve the best-so-far (one shared RNG
    # stream prefix across the preset's points).
    budgets = sorted(curve)
    assert all(
        curve[a] <= curve[b] for a, b in zip(budgets, budgets[1:])
    )


def test_fig5_randomized_iteration_validates_model(benchmark, report):
    """Full-simulator spot check of the sampled curve's physics: a
    fully-heavy iteration lands in the same range as the model."""
    result = benchmark.pedantic(
        lambda: run_figure("fig5"), rounds=1, iterations=1
    )
    rows = rows_by_label(result)
    measured = rows["all-heavy iteration ACTs (simulated)"].measured
    report(f"Figure 5 - all-heavy iteration ACTs: {measured:.0f} "
           "(expected ~1024-1152 range)")
    assert measured >= 6.5 * JAILBREAK_QUEUE_THRESHOLD
