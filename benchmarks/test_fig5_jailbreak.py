"""Figure 5: breaking deterministic and randomized Panopticon.

The deterministic Jailbreak reaches ~9x the queueing threshold in one
shot; the randomized variant gets there probabilistically, improving
with the number of iterations (success probability 2^-16 per
iteration).
"""

from benchmarks.conftest import FAST
from repro.attacks.jailbreak import (
    randomized_jailbreak_curve,
    run_deterministic_jailbreak,
    run_randomized_jailbreak_iteration,
)
from repro.report.paper_values import (
    JAILBREAK_DETERMINISTIC_ACTS,
    JAILBREAK_QUEUE_THRESHOLD,
    JAILBREAK_RANDOMIZED_ACTS,
)
from repro.report.tables import format_table

ITERATIONS = [2**k for k in range(2, 21, 3)]


def test_fig5_deterministic(benchmark, report):
    result = benchmark.pedantic(run_deterministic_jailbreak, rounds=1, iterations=1)
    rows = [
        ("ACTs on attack row", JAILBREAK_DETERMINISTIC_ACTS, result.acts_on_attack_row),
        ("x queueing threshold", 9.0, round(result.acts_on_attack_row / 128, 1)),
        ("ALERTs triggered", 0, result.alerts),
    ]
    report(format_table(["metric", "paper", "measured"], rows, title="Figure 5 - Deterministic Jailbreak"))
    assert result.acts_on_attack_row >= 8.5 * JAILBREAK_QUEUE_THRESHOLD
    assert result.alerts == 0


def test_fig5_randomized_curve(benchmark, report):
    curve = benchmark.pedantic(
        lambda: randomized_jailbreak_curve(ITERATIONS, seed=0), rounds=1, iterations=1
    )
    rows = [(f"2^{n.bit_length() - 1}", "", curve[n]) for n in ITERATIONS]
    rows.append(("paper best (~5 min)", JAILBREAK_RANDOMIZED_ACTS, max(curve.values())))
    report(
        format_table(
            ["iterations", "paper", "best ACTs on attack row"],
            rows,
            title="Figure 5 - Randomized Jailbreak (sampled curve)",
        )
    )
    assert max(curve.values()) >= 8 * JAILBREAK_QUEUE_THRESHOLD


def test_fig5_randomized_iteration_validates_model(benchmark, report):
    """Full-simulator spot check of the sampled curve's physics: a
    fully-heavy iteration lands in the same range as the model."""
    result = benchmark.pedantic(
        lambda: run_randomized_jailbreak_iteration(
            initial_counters=[112] * 8, attack_row_counter=96
        ),
        rounds=1,
        iterations=1,
    )
    rows = [("all-heavy iteration ACTs", "~1024-1152", result.acts_on_attack_row)]
    report(format_table(["metric", "expected", "measured"], rows, title="Figure 5 - iteration validation"))
    assert result.acts_on_attack_row >= 6.5 * JAILBREAK_QUEUE_THRESHOLD
