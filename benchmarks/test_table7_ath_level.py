"""Table 7: ATH x ABO-level sweep — slowdown and tolerated T_RH.

The slowdown grid comes from the cached ``sweep:table7`` artifact via
the figure registry; the Safe-TRH column is the Appendix A Ratchet
model, reproduced (and asserted cell-by-cell) by the Figure 15
benchmark over the shared ``model:fig15`` artifact.
"""

from benchmarks.conftest import figure_text, run_figure

CELLS = [(32, 1), (32, 2), (32, 4), (64, 1), (64, 2), (64, 4),
         (128, 1), (128, 2), (128, 4)]


def test_table7_ath_level(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("table7"), rounds=1, iterations=1
    )
    report(figure_text(result))

    points = list(result.artifacts["sweep:table7"]["points"].values())
    table = {}
    for ath, level in CELLS:
        metrics = [
            p["metrics"]
            for p in points
            if p["ath"] == ath and p["abo_level"] == level
        ]
        assert metrics, f"no points at ({ath}, L{level})"
        table[(ath, level)] = sum(m["slowdown"] for m in metrics) / len(
            metrics
        )

    # Shape: lower ATH costs more performance at every level.
    for level in (1, 2, 4):
        assert (
            table[(32, level)]
            >= table[(64, level)]
            >= table[(128, level)]
        )
