"""Table 7: ATH x ABO-level sweep — slowdown and tolerated T_RH.

The Safe-TRH column comes from the Appendix A Ratchet model (matches
the paper within one activation on every cell); the slowdown column is
measured on the sweep workload subset.
"""

from benchmarks.conftest import run_one, sweep_profiles
from repro.analysis.ratchet_model import ratchet_safe_trh
from repro.report.paper_values import TABLE7_ATH_LEVEL
from repro.report.tables import format_table

CELLS = [(32, 1), (32, 2), (32, 4), (64, 1), (64, 2), (64, 4), (128, 1), (128, 2), (128, 4)]


def test_table7_ath_level(benchmark, report, schedules):
    profiles = sweep_profiles()

    def sweep():
        table = {}
        for ath, level in CELLS:
            results = [
                run_one(p, schedules, ath=ath, abo_level=level) for p in profiles
            ]
            slowdown = sum(r.slowdown for r in results) / len(results)
            table[(ath, level)] = (slowdown, ratchet_safe_trh(ath, level))
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for ath, level in CELLS:
        paper_slow, paper_trh = TABLE7_ATH_LEVEL[(ath, level)]
        slow, trh = table[(ath, level)]
        rows.append(
            (
                ath,
                f"MOAT-L{level}",
                f"{paper_slow * 100:.2f}%",
                f"{slow * 100:.2f}%",
                paper_trh,
                trh,
            )
        )
    report(
        format_table(
            ["ATH", "design", "paper slowdown", "measured", "paper TRH", "model TRH"],
            rows,
            title="Table 7 - ATH x ABO-level sweep",
        )
    )
    for (ath, level), (_, trh) in table.items():
        assert abs(trh - TABLE7_ATH_LEVEL[(ath, level)][1]) <= 1
    # Shape: lower ATH costs more performance at every level.
    for level in (1, 2, 4):
        assert table[(32, level)][0] >= table[(64, level)][0] >= table[(128, level)][0]
