"""Figure 1(a): the in-DRAM tracker design space at T_RH ~ 99.

The paper's motivating figure places designs on SRAM-cost vs security
axes. With every design implemented, we can measure both coordinates:

* Low-cost SRAM tracker (TRR-style, 16 entries): cheap, broken by a
  many-aggressor pattern.
* SRAM-optimal tracker (Graphene sizing): secure, but needs tens of
  kilobytes per bank at T_RH=99.
* Panopticon (PRAC + queue): cheap, broken by Jailbreak (9x).
* MOAT (PRAC + single entry + ABO): cheap and secure (bounded at 99).
"""

from repro.analysis.ratchet_model import ratchet_safe_trh
from repro.attacks.jailbreak import run_deterministic_jailbreak
from repro.attacks.ratchet import run_ratchet
from repro.attacks.trespass import run_many_aggressor_attack
from repro.mitigations.graphene import graphene_sram_bytes
from repro.mitigations.moat import MoatPolicy
from repro.mitigations.panopticon import PanopticonPolicy
from repro.mitigations.trr import TrrTracker
from repro.report.tables import format_table

TARGET_TRH = 99


def test_fig1_design_space(benchmark, report):
    def measure():
        trr_exposure = run_many_aggressor_attack(
            num_aggressors=32, tracker_entries=16, acts_per_aggressor=600
        ).max_danger
        panopticon_exposure = run_deterministic_jailbreak().acts_on_attack_row
        moat_exposure = run_ratchet(ath=64, pool_size=64).acts_on_attack_row
        return trr_exposure, panopticon_exposure, moat_exposure

    trr_exposure, pan_exposure, moat_exposure = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    rows = [
        (
            "TRR-style (16 entries)",
            f"{TrrTracker(entries=16).sram_bytes()} B",
            f"{trr_exposure} (unbounded)",
            "NO",
        ),
        (
            "Graphene-sized (optimal SRAM)",
            f"{graphene_sram_bytes(TARGET_TRH):,} B",
            f"<= {TARGET_TRH} by construction",
            "yes (impractical)",
        ),
        (
            "Panopticon (PRAC + 8-queue)",
            f"{PanopticonPolicy().sram_bytes()} B",
            f"{pan_exposure} (Jailbreak)",
            "NO",
        ),
        (
            "MOAT (PRAC + ABO, ATH=64)",
            f"{MoatPolicy().sram_bytes()} B",
            f"{moat_exposure} <= {ratchet_safe_trh(64, 1)}",
            "YES",
        ),
    ]
    report(
        format_table(
            ["design", "SRAM/bank", "worst exposure @ TRH~99", "secure?"],
            rows,
            title="Figure 1(a) - In-DRAM tracker design space",
        )
    )
    # The quadrant claims: only MOAT is simultaneously cheap and secure.
    assert trr_exposure > TARGET_TRH
    assert pan_exposure > TARGET_TRH
    assert moat_exposure <= ratchet_safe_trh(64, 1)
    assert MoatPolicy().sram_bytes() < 10
    assert graphene_sram_bytes(TARGET_TRH) > 1_000 * MoatPolicy().sram_bytes()
