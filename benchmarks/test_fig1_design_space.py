"""Figure 1(a): the in-DRAM tracker design space at T_RH ~ 99.

The paper's motivating figure places designs on SRAM-cost vs security
axes. With every design implemented, we can measure both coordinates:

* Low-cost SRAM tracker (TRR-style, 16 entries): cheap, broken by a
  many-aggressor pattern.
* SRAM-optimal tracker (Graphene sizing): secure, but needs tens of
  kilobytes per bank at T_RH=99.
* Panopticon (PRAC + queue): cheap, broken by Jailbreak (9x).
* MOAT (PRAC + single entry + ABO): cheap and secure (bounded at 99).

Pulls from the cached ``attack:fig1`` and ``model:fig1-sram`` artifacts
via the figure registry.
"""

from benchmarks.conftest import figure_text, rows_by_label, run_figure
from repro.report.paper_values import FIG1_TARGET_TRH


def test_fig1_design_space(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("fig1"), rounds=1, iterations=1
    )
    report(figure_text(result))
    rows = rows_by_label(result)

    trr_exposure = rows["TRR-16 worst exposure"].measured
    pan_exposure = rows["Panopticon Jailbreak exposure"].measured
    moat_exposure = rows["MOAT Ratchet exposure"].measured
    moat_sram = rows["MOAT SRAM (B/bank)"].measured
    graphene_sram = rows["Graphene-sized SRAM (B/bank)"].measured

    # The quadrant claims: only MOAT is simultaneously cheap and secure.
    assert trr_exposure > FIG1_TARGET_TRH
    assert pan_exposure > FIG1_TARGET_TRH
    assert moat_exposure <= FIG1_TARGET_TRH
    assert moat_sram < 10
    assert graphene_sram > 1_000 * moat_sram
