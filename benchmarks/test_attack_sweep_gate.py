"""Security figures through the sweep stack, gated on baselines.

Every attack preset (Figure 5, Figure 10, Figure 12/TSA, Figure 13,
Table 2 feinting, Figure 16 postponement) runs through
``repro.sweep.attack_runner`` with the shared on-disk point cache and
must match the committed smoke baselines under
``benchmarks/baselines/attack_<preset>.json`` — the same gate CI
applies via ``repro attack sweep <preset> --check``. The attacks are
deterministic, so this is effectively a bit-identity check on the
whole security evaluation.
"""

from __future__ import annotations

import pathlib

import pytest

from benchmarks.conftest import N_JOBS
from repro.sweep.artifacts import (
    ATTACK_GATED_METRICS,
    ATTACK_SCHEMA,
    check_against_baseline,
    default_baseline_path,
    make_attack_artifact,
)
from repro.sweep.attack_runner import (
    DEFAULT_ATTACK_CACHE_DIR,
    run_attack_sweep,
)
from repro.sweep.attack_spec import ATTACK_PRESETS, attack_preset

REPO_ROOT = pathlib.Path(__file__).parent.parent

#: Shared with the `repro attack sweep` CLI when run from the repo root.
ATTACK_CACHE_DIR = REPO_ROOT / DEFAULT_ATTACK_CACHE_DIR


@pytest.mark.parametrize("preset_name", sorted(ATTACK_PRESETS))
def test_attack_preset_matches_baseline(preset_name, report, record_json):
    spec = attack_preset(preset_name)
    result = run_attack_sweep(spec, jobs=N_JOBS, cache_dir=ATTACK_CACHE_DIR)
    artifact = make_attack_artifact(result)

    baseline = default_baseline_path(f"attack_{preset_name}", root=REPO_ROOT)
    # Zero tolerance: the attacks are deterministic, so the gate is a
    # true bit-identity check, not a drift allowance.
    ok, problems = check_against_baseline(
        artifact, baseline, rtol=0.0, atol=0.0,
        schema=ATTACK_SCHEMA, gated_metrics=ATTACK_GATED_METRICS,
    )
    assert ok, "\n".join(problems)

    lines = [f"Attack sweep {preset_name} — {spec.description}"]
    for point in result.results:
        lines.append(
            f"  {point.attack:50s} attack-row ACTs "
            f"{point.metrics.get('acts_on_attack_row', 0.0):6.0f}  "
            f"ALERTs {point.metrics.get('alerts', 0.0):5.0f}"
        )
    report("\n".join(lines))
    record_json(
        {
            "preset": preset_name,
            "points": len(result.results),
            "cache_hits": result.cache_hits,
            "compute_time_s": round(result.compute_time_s, 3),
            "aggregates": result.aggregates(),
        },
        key=f"attack_sweep_{preset_name}",
    )
