"""Section 2.4 motivation: low-cost SRAM trackers are easily broken.

Not a numbered figure, but the premise of the paper: a TRRespass-style
many-aggressor pattern blinds a Misra-Gries tracker completely, while
the same tracker easily handles fewer aggressors than entries.
"""

from repro.attacks.trespass import run_many_aggressor_attack
from repro.report.tables import format_table


def test_many_aggressor_thrashing(benchmark, report):
    def attack():
        return (
            run_many_aggressor_attack(
                num_aggressors=32, tracker_entries=16, acts_per_aggressor=600
            ),
            run_many_aggressor_attack(
                num_aggressors=4, tracker_entries=16, acts_per_aggressor=600
            ),
        )

    blinded, caught = benchmark.pedantic(attack, rounds=1, iterations=1)
    rows = [
        ("32 aggressors vs 16 entries", "unbounded", blinded.max_danger),
        ("4 aggressors vs 16 entries", "bounded", caught.max_danger),
    ]
    report(
        format_table(
            ["pattern", "paper expectation", "max victim exposure"],
            rows,
            title="Section 2.4 - Low-cost tracker motivation",
        )
    )
    assert blinded.max_danger >= 590  # tracker never mitigates
    assert caught.max_danger < blinded.max_danger
