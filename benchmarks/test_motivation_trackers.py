"""Section 2.4 motivation: low-cost SRAM trackers are easily broken.

Not a numbered figure, but the premise of the paper: a TRRespass-style
many-aggressor pattern blinds a Misra-Gries tracker completely, while
the same tracker easily handles fewer aggressors than entries.

Pulls from the cached ``attack:motivation`` artifact via the figure
registry.
"""

from benchmarks.conftest import figure_text, rows_by_label, run_figure
from repro.report.paper_values import MOTIVATION_TRACKER_ENTRIES

ENTRIES = MOTIVATION_TRACKER_ENTRIES


def test_many_aggressor_thrashing(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("motivation"), rounds=1, iterations=1
    )
    report(figure_text(result))
    rows = rows_by_label(result)
    blinded = rows[f"exposure: 32 aggressors vs {ENTRIES} entries"].measured
    caught = rows[f"exposure: 4 aggressors vs {ENTRIES} entries"].measured
    assert blinded >= 590  # tracker never mitigates
    assert caught < blinded
