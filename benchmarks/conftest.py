"""Shared infrastructure for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper through the
:mod:`repro.report` pipeline — the same figure registry, sweep/attack/
model presets, and on-disk point caches the ``repro report`` CLI uses —
prints the rendered paper-vs-measured table (bypassing pytest capture
so it is visible in normal runs), and appends it to
``benchmarks/results/summary.txt``. Benchmarks that emit
machine-readable metrics additionally merge them into
``benchmarks/results/summary.json`` (via the ``record_json`` fixture),
so the perf trajectory is diffable in CI alongside the ``BENCH_*.json``
artifacts.

No benchmark drives the simulation engine directly: every simulated or
derived number comes out of a cached ``BENCH`` artifact, so re-runs
resume instead of recomputing and the harness, the CLI, and the CI
baseline gates all share one code path. (The one deliberate exception
is ``test_engine_hotpath.py``, which *measures* the engine itself —
caching it would defeat the microbenchmark.)

Scale: set ``REPRO_FAST=1`` to use a reduced workload subset and a half
refresh window for the performance sweeps (about 4x faster, same
qualitative results). ``REPRO_JOBS`` sets the sweep-runner worker count
(default: CPU count).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, List, Optional

import pytest

from repro.obs import run_provenance
from repro.report.figures import FigureRow
from repro.report.pipeline import (
    FigureResult,
    ReportOptions,
    render_figure_text,
)
from repro.report.pipeline import run_figure as _run_figure
from repro.sweep.artifacts import git_revision, utc_now
from repro.sweep.runner import DEFAULT_CACHE_DIR, SweepResult, run_sweep
from repro.sweep.spec import SWEEP_WORKLOADS as _SWEEP_WORKLOADS
from repro.sweep.spec import SweepSpec
from repro.workloads.profiles import TABLE4_PROFILES, WorkloadProfile

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Root of the on-disk point caches shared with the ``repro`` CLI when
#: run from the repo root (``.repro-cache/{sweep,attack,model}``).
#: Cache identity is the point config hash plus the family's
#: RESULT_VERSION constant; bump those whenever simulator, attack, or
#: evaluator semantics change, or stale points will be replayed.
CACHE_ROOT = pathlib.Path(__file__).parent.parent / ".repro-cache"

#: Sweep-family cache (kept for the direct sweep-runner benchmarks).
SWEEP_CACHE_DIR = pathlib.Path(__file__).parent.parent / DEFAULT_CACHE_DIR

FAST = os.environ.get("REPRO_FAST", "") not in ("", "0")

#: Worker processes for the sweep-runner-backed benchmarks. An unset,
#: empty, or non-numeric REPRO_JOBS falls back to the CPU count
#: (like REPRO_FAST, malformed means "not set").
try:
    N_JOBS = int(os.environ.get("REPRO_JOBS") or 0)
except ValueError:
    N_JOBS = 0
N_JOBS = N_JOBS or (os.cpu_count() or 1)

#: Window length for performance sweeps.
N_TREFI = 4096 if FAST else 8192

#: Representative subset for the parameter-sweep tables (the hottest
#: workloads plus quiet controls); the figure benchmarks use all 21.
#: Canonically defined next to the sweep presets.
SWEEP_WORKLOADS = list(_SWEEP_WORKLOADS)


@pytest.fixture
def report(capsys):
    """Print a reproduction table to the real terminal and persist it."""

    def _report(text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        with open(RESULTS_DIR / "summary.txt", "a") as handle:
            handle.write(text + "\n\n")
        with capsys.disabled():
            print("\n" + text)

    return _report


@pytest.fixture
def record_json(request):
    """Merge one benchmark's metrics into ``results/summary.json``.

    Each call replaces the entry under the benchmark's key with the
    latest measurement (stamped with a full provenance block: schema
    version, package version, resolved backend, git describe, ISO
    timestamp — all injected here, never read inside sim scope),
    keeping the file a current, machine-diffable snapshot rather than
    an append-only log (that is ``summary.txt``'s job).
    """

    def _record(payload: Dict[str, object], key: str = "") -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / "summary.json"
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            data = {}
        if not isinstance(data, dict):  # self-heal hand-edited files
            data = {}
        data[key or request.node.name] = {
            "recorded_utc": utc_now(),
            "git_rev": git_revision(),
            "n_trefi": N_TREFI,
            "fast_mode": FAST,
            "provenance": run_provenance(),
            **payload,
        }
        path.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")

    return _record


def run_grid(spec: SweepSpec) -> SweepResult:
    """Run a sweep spec with the benchmark-level scale applied."""
    return run_sweep(spec, jobs=N_JOBS, cache_dir=SWEEP_CACHE_DIR)


def sweep_profiles() -> List[WorkloadProfile]:
    chosen = SWEEP_WORKLOADS[:5] if FAST else SWEEP_WORKLOADS
    return [p for p in TABLE4_PROFILES if p.name in chosen]


def all_profiles() -> List[WorkloadProfile]:
    if FAST:
        return sweep_profiles()
    return list(TABLE4_PROFILES)


def report_options() -> ReportOptions:
    """Figure-pipeline options at the harness scale.

    REPRO_FAST restricts every sweep-family source to the hot-biased
    workload subset (model ``workload-stats`` points follow suit); the
    full run keeps each preset's own workload list (all 21 for the
    figures, the 9-workload subset for the parameter tables).
    """
    workloads: Optional[tuple] = None
    if FAST:
        workloads = tuple(p.name for p in sweep_profiles())
    return ReportOptions(
        n_trefi=N_TREFI,
        jobs=N_JOBS,
        cache_root=CACHE_ROOT,
        workloads=workloads,
    )


def run_figure(name: str) -> FigureResult:
    """Run one registered paper figure at the harness scale."""
    return _run_figure(name, report_options())


def rows_by_label(result: FigureResult) -> Dict[str, FigureRow]:
    """Index a figure's extracted rows by label for assertions."""
    return {row.label: row for row in result.rows}


def figure_text(result: FigureResult) -> str:
    """Rendered paper-vs-measured table (the ``report`` payload)."""
    return render_figure_text(result)


def record_figure(record_json, result: FigureResult, key: str) -> None:
    """Merge a figure's rows and source provenance into summary.json."""
    record_json(
        {
            "max_abs_rel_delta": result.max_abs_rel_delta,
            "sources": {
                source: {
                    "sweep_hash": artifact.get("sweep_hash"),
                    "cache_hits": artifact.get("cache_hits"),
                    "compute_time_s": artifact.get("compute_time_s"),
                    "wall_clock_s": artifact.get("wall_clock_s"),
                }
                for source, artifact in result.artifacts.items()
            },
            "rows": {
                row.label: {
                    "paper": row.paper,
                    "measured": row.measured,
                    "rel_delta": row.rel_delta,
                }
                for row in result.rows
            },
        },
        key=key,
    )
