"""Shared infrastructure for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper, prints a
paper-vs-measured comparison (bypassing pytest capture so it is visible
in normal runs), and appends it to ``benchmarks/results/summary.txt``.

Scale: set ``REPRO_FAST=1`` to use a reduced workload subset and a half
refresh window for the performance sweeps (about 4x faster, same
qualitative results).
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, List

import pytest

from repro.sim.perf import MoatRunConfig, PerfResult, run_workload
from repro.workloads.generator import ActivationSchedule, generate_schedule
from repro.workloads.profiles import TABLE4_PROFILES, WorkloadProfile

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FAST = os.environ.get("REPRO_FAST", "") not in ("", "0")

#: Window length for performance sweeps.
N_TREFI = 4096 if FAST else 8192

#: Representative subset for the parameter-sweep tables (the hottest
#: workloads plus quiet controls); the figure benchmarks use all 21.
SWEEP_WORKLOADS = [
    "roms",
    "parest",
    "xz",
    "lbm",
    "mcf",
    "cactuBSSN",
    "bwaves",
    "sssp",
    "tc",
]


@pytest.fixture
def report(capsys):
    """Print a reproduction table to the real terminal and persist it."""

    def _report(text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        with open(RESULTS_DIR / "summary.txt", "a") as handle:
            handle.write(text + "\n\n")
        with capsys.disabled():
            print("\n" + text)

    return _report


class ScheduleCache:
    """Per-session cache of generated workload schedules."""

    def __init__(self) -> None:
        self._cache: Dict[str, ActivationSchedule] = {}

    def get(self, profile: WorkloadProfile, n_trefi: int = N_TREFI) -> ActivationSchedule:
        key = f"{profile.name}:{n_trefi}"
        if key not in self._cache:
            self._cache[key] = generate_schedule(profile, n_trefi=n_trefi, seed=0)
        return self._cache[key]


@pytest.fixture(scope="session")
def schedules() -> ScheduleCache:
    return ScheduleCache()


def sweep_profiles() -> List[WorkloadProfile]:
    chosen = SWEEP_WORKLOADS[:5] if FAST else SWEEP_WORKLOADS
    return [p for p in TABLE4_PROFILES if p.name in chosen]


def all_profiles() -> List[WorkloadProfile]:
    if FAST:
        return sweep_profiles()
    return list(TABLE4_PROFILES)


def run_config(**kwargs) -> MoatRunConfig:
    kwargs.setdefault("n_trefi", N_TREFI)
    return MoatRunConfig(**kwargs)


def run_one(
    profile: WorkloadProfile, cache: ScheduleCache, **kwargs
) -> PerfResult:
    config = run_config(**kwargs)
    return run_workload(profile, config, schedule=cache.get(profile, config.n_trefi))
