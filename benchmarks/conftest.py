"""Shared infrastructure for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper, prints a
paper-vs-measured comparison (bypassing pytest capture so it is visible
in normal runs), and appends it to ``benchmarks/results/summary.txt``.
Benchmarks that emit machine-readable metrics additionally merge them
into ``benchmarks/results/summary.json`` (via the ``record_json``
fixture), so the perf trajectory is diffable in CI alongside the
``BENCH_sweep_*.json`` artifacts.

Scale: set ``REPRO_FAST=1`` to use a reduced workload subset and a half
refresh window for the performance sweeps (about 4x faster, same
qualitative results). ``REPRO_JOBS`` sets the sweep-runner worker count
(default: CPU count).

The grid-shaped benchmarks (Figure 11, Table 5) run on the
:mod:`repro.sweep` runner and share its on-disk point cache (the
repo-root ``.repro-cache/sweep``, same as the ``repro sweep`` CLI),
so re-runs resume instead of recomputing.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, List

import pytest

from repro.sim.perf import MoatRunConfig, PerfResult, run_workload
from repro.sweep.artifacts import git_revision, utc_now
from repro.sweep.runner import DEFAULT_CACHE_DIR, SweepResult, run_sweep
from repro.sweep.spec import SWEEP_WORKLOADS as _SWEEP_WORKLOADS
from repro.sweep.spec import SweepSpec
from repro.workloads.generator import ActivationSchedule, generate_schedule
from repro.workloads.profiles import TABLE4_PROFILES, WorkloadProfile

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: On-disk sweep point cache shared by the grid-shaped benchmarks —
#: the same location `repro sweep` defaults to when run from the repo
#: root, so CLI sweeps and benchmark runs reuse each other's points.
#: Cache identity is the point config hash plus RESULT_VERSION (in
#: repro/sweep/spec.py); bump that constant whenever simulator or
#: generator semantics change, or stale points will be replayed.
SWEEP_CACHE_DIR = pathlib.Path(__file__).parent.parent / DEFAULT_CACHE_DIR

FAST = os.environ.get("REPRO_FAST", "") not in ("", "0")

#: Worker processes for the sweep-runner-backed benchmarks. An unset,
#: empty, or non-numeric REPRO_JOBS falls back to the CPU count
#: (like REPRO_FAST, malformed means "not set").
try:
    N_JOBS = int(os.environ.get("REPRO_JOBS") or 0)
except ValueError:
    N_JOBS = 0
N_JOBS = N_JOBS or (os.cpu_count() or 1)

#: Window length for performance sweeps.
N_TREFI = 4096 if FAST else 8192

#: Representative subset for the parameter-sweep tables (the hottest
#: workloads plus quiet controls); the figure benchmarks use all 21.
#: Canonically defined next to the sweep presets.
SWEEP_WORKLOADS = list(_SWEEP_WORKLOADS)


@pytest.fixture
def report(capsys):
    """Print a reproduction table to the real terminal and persist it."""

    def _report(text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        with open(RESULTS_DIR / "summary.txt", "a") as handle:
            handle.write(text + "\n\n")
        with capsys.disabled():
            print("\n" + text)

    return _report


@pytest.fixture
def record_json(request):
    """Merge one benchmark's metrics into ``results/summary.json``.

    Each call replaces the entry under the benchmark's key with the
    latest measurement (stamped with time and git revision), keeping
    the file a current, machine-diffable snapshot rather than an
    append-only log (that is ``summary.txt``'s job).
    """

    def _record(payload: Dict[str, object], key: str = "") -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / "summary.json"
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            data = {}
        if not isinstance(data, dict):  # self-heal hand-edited files
            data = {}
        data[key or request.node.name] = {
            "recorded_utc": utc_now(),
            "git_rev": git_revision(),
            "n_trefi": N_TREFI,
            "fast_mode": FAST,
            **payload,
        }
        path.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")

    return _record


def run_grid(spec: SweepSpec) -> SweepResult:
    """Run a sweep spec with the benchmark-level scale applied."""
    return run_sweep(spec, jobs=N_JOBS, cache_dir=SWEEP_CACHE_DIR)


class ScheduleCache:
    """Per-session cache of generated workload schedules."""

    def __init__(self) -> None:
        self._cache: Dict[str, ActivationSchedule] = {}

    def get(self, profile: WorkloadProfile, n_trefi: int = N_TREFI) -> ActivationSchedule:
        key = f"{profile.name}:{n_trefi}"
        if key not in self._cache:
            self._cache[key] = generate_schedule(profile, n_trefi=n_trefi, seed=0)
        return self._cache[key]


@pytest.fixture(scope="session")
def schedules() -> ScheduleCache:
    return ScheduleCache()


def sweep_profiles() -> List[WorkloadProfile]:
    chosen = SWEEP_WORKLOADS[:5] if FAST else SWEEP_WORKLOADS
    return [p for p in TABLE4_PROFILES if p.name in chosen]


def all_profiles() -> List[WorkloadProfile]:
    if FAST:
        return sweep_profiles()
    return list(TABLE4_PROFILES)


def run_config(**kwargs) -> MoatRunConfig:
    kwargs.setdefault("n_trefi", N_TREFI)
    return MoatRunConfig(**kwargs)


def run_one(
    profile: WorkloadProfile, cache: ScheduleCache, **kwargs
) -> PerfResult:
    config = run_config(**kwargs)
    return run_workload(profile, config, schedule=cache.get(profile, config.n_trefi))
