"""Ablations for the paper's Section 9 design recommendations.

1. "Larger queues introduce vulnerability from insertion to
   mitigation, so shorter queues are preferred" — Jailbreak exposure
   grows linearly with Panopticon's queue length. Runs on the
   ``ablation-queue`` attack preset (cached, baseline-gated like every
   other attack grid; not a paper figure, so it lives outside the
   figure registry).
2. "ABO Mitigation Level 1 is preferred over Level 4" — level 1 both
   tolerates the highest T_RH per ATH (Figure 15) and has the lowest
   worst-case slowdown (Appendix D). Pure closed-form models.
"""

from benchmarks.conftest import CACHE_ROOT, N_JOBS
from repro.analysis.ratchet_model import ratchet_safe_trh
from repro.analysis.throughput import continuous_alert_slowdown
from repro.report.tables import format_table
from repro.sweep.attack_runner import run_attack_sweep
from repro.sweep.attack_spec import attack_preset

QUEUE_SIZES = [1, 2, 4, 8, 16]


def test_ablation_queue_size(benchmark, report):
    def sweep():
        result = run_attack_sweep(
            attack_preset("ablation-queue"),
            jobs=N_JOBS,
            cache_dir=CACHE_ROOT / "attack",
        )
        return {
            r.params["queue_entries"]: r.metrics["acts_on_attack_row"]
            for r in result.results
        }

    exposures = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (q, f"~{q + 1} x 128", exposures[q]) for q in QUEUE_SIZES
    ]
    report(
        format_table(
            ["queue entries", "expected exposure", "Jailbreak ACTs"],
            rows,
            title="Ablation - Panopticon queue length (Recommendation 1)",
        )
    )
    values = [exposures[q] for q in QUEUE_SIZES]
    assert values == sorted(values)
    # Exposure grows by roughly one queueing threshold per extra slot.
    assert exposures[16] - exposures[1] >= 10 * 128


def test_ablation_abo_level(benchmark, report):
    def compute():
        return {
            level: (ratchet_safe_trh(64, level), continuous_alert_slowdown(level))
            for level in (1, 2, 4)
        }

    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        (f"level {level}", table[level][0], f"{table[level][1]:.1f}x")
        for level in (1, 2, 4)
    ]
    report(
        format_table(
            ["ABO level", "tolerated TRH @ ATH=64", "worst-case slowdown"],
            rows,
            title="Ablation - ABO level (Recommendation 3)",
        )
    )
    assert table[1][0] > table[2][0] > table[4][0]
    assert table[1][1] < table[2][1] < table[4][1]
