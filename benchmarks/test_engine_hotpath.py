"""Engine hot-path microbenchmark: array-backed batch vs per-ACT loop.

Pins the performance claim of the layered-core refactor: driving a
workload through the dense-counter ``activate_many`` fast path must be
at least 1.5x faster per simulated tREFI than the seed engine's
configuration (sparse dict-backed PRAC counters, one ``activate()``
method-call chain per ACT). Both paths produce bit-identical
simulation state — that equivalence is pinned by
``tests/sim/test_engine_batch.py``; this benchmark pins the speed.

The measured wall-clock per simulated tREFI lands in
``results/summary.json`` (uploaded as a CI artifact), so the engine's
perf trajectory stays visible across PRs.
"""

import time

from benchmarks.conftest import FAST
from repro.mitigations.moat import MoatPolicy
from repro.report.tables import format_table
from repro.sim.backend import numba_available
from repro.sim.engine import SimConfig, SubchannelSim
from repro.workloads.generator import generate_schedule
from repro.workloads.profiles import profile_by_name

N_TREFI = 1024 if FAST else 2048
ROUNDS = 3
REQUIRED_SPEEDUP = 1.5


def _drive(schedule, dense: bool, batched: bool, backend=None) -> float:
    """One timed run; returns seconds. Asserts the runs agree."""
    sim = SubchannelSim(
        SimConfig(track_danger=False, dense_counters=dense, backend=backend),
        lambda: MoatPolicy(ath=64),
    )
    trefi = sim.timing.t_refi
    started = time.perf_counter()
    for interval, rows in enumerate(schedule):
        target = interval * trefi
        if sim.now < target:
            sim.advance_to(target)
        if batched:
            sim.activate_many(rows)
        else:
            for row in rows:
                sim.activate(row)
    sim.flush()
    elapsed = time.perf_counter() - started
    # Smoke-check the run did real work and both paths agree on it.
    assert sim.total_acts == sum(len(rows) for rows in schedule)
    return elapsed


def test_engine_hotpath_speedup(report, record_json):
    schedule = generate_schedule(
        profile_by_name("roms"), n_trefi=N_TREFI, seed=0
    ).per_trefi

    # Best-of-N on both paths: robust against scheduler noise without
    # hiding a real regression.
    legacy = min(
        _drive(schedule, dense=False, batched=False) for _ in range(ROUNDS)
    )
    fast = min(
        _drive(schedule, dense=True, batched=True) for _ in range(ROUNDS)
    )
    speedup = legacy / fast
    legacy_us = legacy / N_TREFI * 1e6
    fast_us = fast / N_TREFI * 1e6

    # Kernel-backend rows ride along informationally: interpreted, the
    # ACT-burst kernel is numpy-scalar bound (slower than the list
    # path); compiled under numba it is the fastest path. Equivalence
    # is pinned by tests/sim/test_engine_batch.py.
    backend_us = {}
    for backend in ("kernel", "numba") if numba_available() else ("kernel",):
        elapsed = min(
            _drive(schedule, dense=True, batched=True, backend=backend)
            for _ in range(ROUNDS)
        )
        backend_us[backend] = elapsed / N_TREFI * 1e6

    rows = [
        ("seed per-ACT loop (sparse dicts)", f"{legacy_us:.1f}"),
        ("array-backed activate_many", f"{fast_us:.1f}"),
    ]
    rows.extend(
        (f"activate_many ({backend} backend)", f"{us:.1f}")
        for backend, us in backend_us.items()
    )
    rows.append(("speedup (array-backed vs seed)", f"{speedup:.2f}x"))
    report(
        format_table(
            ["engine path", "us / simulated tREFI"],
            rows,
            title="Engine hot path - batched array-backed vs seed loop",
        )
    )
    record_json(
        {
            "legacy_us_per_trefi": legacy_us,
            "fast_us_per_trefi": fast_us,
            "backend_us_per_trefi": backend_us,
            "numba_available": numba_available(),
            "speedup": speedup,
            "required_speedup": REQUIRED_SPEEDUP,
            "n_trefi": N_TREFI,
        },
        key="engine_hotpath",
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"array-backed hot path only {speedup:.2f}x faster than the seed "
        f"per-ACT loop (need {REQUIRED_SPEEDUP}x)"
    )
