"""System hot-path microbenchmark.

Times the multi-client crossbar end to end — per-client stream
synthesis, priority/round-robin admission, per-bank queueing, and the
shard merge — and records requests/second into
``results/summary.json``, so the BENCH trajectory captures the system
layer's speed from its first PR.

Runs serially and uncached on purpose (like the other hot-path
benchmarks): it measures the crossbar arbitration loop itself, so a
process pool or a replayed shard would hide exactly the regressions
the floor exists to catch (a per-grant rescan of every stream, a
quadratic admission walk across clients, ...).
"""

import time

from benchmarks.conftest import FAST
from repro.report.tables import format_table
from repro.sweep.system_spec import TENANT_WORKLOAD
from repro.system import ClientSpec, SystemRunConfig, run_system

N_TREFI = 256 if FAST else 512
ROUNDS = 3
#: Catastrophe floor, far below what one core sustains through the
#: crossbar (~50k+ req/s); catches hot-path blowups, not noise.
REQUIRED_REQUESTS_PER_S = 2000.0


def test_system_hotpath_throughput(report, record_json):
    config = SystemRunConfig(
        clients=(
            ClientSpec(name="t0", workload=TENANT_WORKLOAD, priority=1),
            ClientSpec(name="t1", workload=TENANT_WORKLOAD, seed=1),
            ClientSpec(name="t2", workload=TENANT_WORKLOAD, seed=2),
        ),
        ath=32,
        banks=4,
        n_trefi=N_TREFI,
    )

    best_s = None
    result = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        result = run_system(config, jobs=1, cache_dir=None)
        elapsed = time.perf_counter() - started
        if best_s is None or elapsed < best_s:
            best_s = elapsed
    requests = result.aggregate.requests
    requests_per_s = requests / best_s
    us_per_request = best_s / requests * 1e6

    report(
        format_table(
            ["metric", "value"],
            [
                ("clients", f"{len(result.clients)}"),
                ("requests served", f"{requests:,}"),
                ("requests / second", f"{requests_per_s:,.0f}"),
                ("us / request", f"{us_per_request:.2f}"),
                ("system read p99 (ns, simulated)",
                 f"{result.aggregate.read_p99_ns:.1f}"),
                ("worst client p99 (ns, simulated)",
                 f"{max(c.read_p99_ns for c in result.clients):.1f}"),
            ],
            title="System hot path - 3 clients through the crossbar",
        )
    )
    record_json(
        {
            "clients": len(result.clients),
            "requests": requests,
            "requests_per_s": requests_per_s,
            "us_per_request": us_per_request,
            "read_p99_ns": result.aggregate.read_p99_ns,
            "n_trefi": N_TREFI,
            "required_requests_per_s": REQUIRED_REQUESTS_PER_S,
        },
        key="system_hotpath",
    )
    assert requests_per_s >= REQUIRED_REQUESTS_PER_S, (
        f"system hot path served only {requests_per_s:.0f} requests/s "
        f"(need {REQUIRED_REQUESTS_PER_S:.0f})"
    )
