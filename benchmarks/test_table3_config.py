"""Table 3: baseline system configuration.

Pulls from the cached ``model:table3`` artifact via the figure
registry.
"""

from benchmarks.conftest import figure_text, rows_by_label, run_figure


def test_table3_config(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("table3"), rounds=1, iterations=1
    )
    report(figure_text(result))
    rows = rows_by_label(result)
    assert rows["alert_l1_ns"].measured == 530.0
    # The modelled system matches the published configuration exactly.
    for row in result.rows:
        assert row.measured == row.paper, row.label
