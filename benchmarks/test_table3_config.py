"""Table 3: baseline system configuration."""

from repro.dram.timing import BASELINE_SYSTEM
from repro.report.tables import format_table


def test_table3_config(benchmark, report):
    cfg = benchmark.pedantic(lambda: BASELINE_SYSTEM, rounds=1, iterations=1)
    rows = [
        ("Out-of-order cores", "8 core, 4GHz, 4-wide, 256 ROB",
         f"{cfg.cores} core, {cfg.core_freq_ghz}GHz, {cfg.core_width}-wide, {cfg.rob_entries} ROB"),
        ("LLC", "8MB, 16-way, 64B lines",
         f"{cfg.llc_bytes // 2**20}MB, {cfg.llc_ways}-way, {cfg.line_bytes}B lines"),
        ("Memory", "32 GB DDR5", f"{cfg.memory_gb} GB DDR5"),
        ("tALERT (L1)", "530 ns", f"{cfg.timing.alert_duration(1):.0f} ns"),
        ("Banks x Sub-ch x Rank", "32 x 2 x 1",
         f"{cfg.banks} x {cfg.subchannels} x {cfg.ranks}"),
        ("Rows per bank", "64K x 8KB", f"{cfg.rows_per_bank // 1024}K x {cfg.row_bytes // 1024}KB"),
        ("Page policy", "closed", "closed" if cfg.closed_page else "open"),
    ]
    report(format_table(["parameter", "paper", "model"], rows, title="Table 3 - System configuration"))
    assert cfg.timing.alert_duration(1) == 530.0
