"""Figure 11: per-workload performance and ALERT rate for MOAT.

(a) Normalized performance at ATH=64 and ATH=128 (ETH = ATH/2): the
paper reports 0.28% average slowdown at ATH=64 and ~0% at ATH=128.
(b) ALERTs per tREFI per sub-channel: 0.023 average at ATH=64, ~0 at
ATH=128.

Absolute magnitudes depend on the temporal structure of the real SPEC/
GAP traces (see DESIGN.md); the reproduced properties are the ordering
of workloads, the near-zero cost at ATH=128, and the sub-1% scale.
"""

from benchmarks.conftest import all_profiles, run_one
from repro.report.paper_values import AVG_ALERTS_PER_TREFI_ATH64, AVG_SLOWDOWN
from repro.report.tables import format_table


def test_fig11_performance_and_alert_rate(benchmark, report, schedules):
    profiles = all_profiles()

    def sweep():
        table = {}
        for ath in (64, 128):
            table[ath] = {p.name: run_one(p, schedules, ath=ath) for p in profiles}
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for p in profiles:
        r64, r128 = table[64][p.name], table[128][p.name]
        rows.append(
            (
                p.display_name,
                f"{r64.normalized_performance:.4f}",
                f"{r128.normalized_performance:.4f}",
                f"{r64.alerts_per_trefi:.3f}",
                f"{r128.alerts_per_trefi:.3f}",
            )
        )
    avg64 = sum(table[64][p.name].slowdown for p in profiles) / len(profiles)
    avg128 = sum(table[128][p.name].slowdown for p in profiles) / len(profiles)
    rate64 = sum(table[64][p.name].alerts_per_trefi for p in profiles) / len(profiles)
    rate128 = sum(table[128][p.name].alerts_per_trefi for p in profiles) / len(profiles)
    rows.append(
        (
            "AVERAGE",
            f"{1 - avg64:.4f}",
            f"{1 - avg128:.4f}",
            f"{rate64:.3f}",
            f"{rate128:.3f}",
        )
    )
    rows.append(
        (
            "paper AVERAGE",
            f"{1 - AVG_SLOWDOWN[64]:.4f}",
            f"{1 - AVG_SLOWDOWN[128]:.4f}",
            f"{AVG_ALERTS_PER_TREFI_ATH64:.3f}",
            "~0",
        )
    )
    report(
        format_table(
            ["workload", "perf ATH64", "perf ATH128", "ALERT/tREFI ATH64", "ATH128"],
            rows,
            title="Figure 11 - MOAT performance and ALERT rate",
        )
    )

    # Shape assertions (see module docstring).
    assert avg64 < 0.01  # sub-1% average slowdown at ATH=64
    assert avg128 <= avg64  # ATH=128 is at least as quiet
    assert rate128 <= rate64
    assert avg128 < 0.001
    # Alert activity concentrates in the hot workloads.
    hot = {"roms", "parest", "xz", "lbm"}
    hot_rate = sum(table[64][n].alerts_per_trefi for n in hot if n in table[64])
    quiet = {"tc", "x264", "wrf"}
    quiet_rate = sum(table[64][n].alerts_per_trefi for n in quiet if n in table[64])
    assert hot_rate >= quiet_rate
