"""Figure 11: per-workload performance and ALERT rate for MOAT.

(a) Normalized performance at ATH=64 and ATH=128 (ETH = ATH/2): the
paper reports 0.28% average slowdown at ATH=64 and ~0% at ATH=128.
(b) ALERTs per tREFI per sub-channel: 0.023 average at ATH=64, ~0 at
ATH=128.

Absolute magnitudes depend on the temporal structure of the real SPEC/
GAP traces (see DESIGN.md); the reproduced properties are the ordering
of workloads, the near-zero cost at ATH=128, and the sub-1% scale.

Runs on the ``repro.sweep`` parallel runner (the ``fig11`` preset at
benchmark scale) — the same grid ``repro sweep fig11`` executes — so
the figure, the CLI, and the CI baseline gate all share one code path
and one result cache.
"""

from benchmarks.conftest import FAST, N_TREFI, all_profiles, run_grid
from repro.report.paper_values import AVG_ALERTS_PER_TREFI_ATH64, AVG_SLOWDOWN
from repro.report.tables import format_table
from repro.sweep.spec import PRESETS


def test_fig11_performance_and_alert_rate(benchmark, report, record_json):
    profiles = all_profiles()
    spec = PRESETS["fig11"].with_overrides(
        n_trefi=N_TREFI, workloads=tuple(p.name for p in profiles)
    )

    result = benchmark.pedantic(lambda: run_grid(spec), rounds=1, iterations=1)
    table = {
        ath: {r.workload: r.metrics for r in result.results if r.ath == ath}
        for ath in (64, 128)
    }

    rows = []
    for p in profiles:
        m64, m128 = table[64][p.name], table[128][p.name]
        rows.append(
            (
                p.display_name,
                f"{m64['normalized_performance']:.4f}",
                f"{m128['normalized_performance']:.4f}",
                f"{m64['alerts_per_trefi']:.3f}",
                f"{m128['alerts_per_trefi']:.3f}",
            )
        )
    avg64 = sum(table[64][p.name]["slowdown"] for p in profiles) / len(profiles)
    avg128 = sum(table[128][p.name]["slowdown"] for p in profiles) / len(profiles)
    rate64 = sum(table[64][p.name]["alerts_per_trefi"] for p in profiles) / len(profiles)
    rate128 = sum(table[128][p.name]["alerts_per_trefi"] for p in profiles) / len(profiles)
    rows.append(
        (
            "AVERAGE",
            f"{1 - avg64:.4f}",
            f"{1 - avg128:.4f}",
            f"{rate64:.3f}",
            f"{rate128:.3f}",
        )
    )
    rows.append(
        (
            "paper AVERAGE",
            f"{1 - AVG_SLOWDOWN[64]:.4f}",
            f"{1 - AVG_SLOWDOWN[128]:.4f}",
            f"{AVG_ALERTS_PER_TREFI_ATH64:.3f}",
            "~0",
        )
    )
    report(
        format_table(
            ["workload", "perf ATH64", "perf ATH128", "ALERT/tREFI ATH64", "ATH128"],
            rows,
            title="Figure 11 - MOAT performance and ALERT rate",
        )
    )
    record_json(
        {
            "avg_slowdown_ath64": avg64,
            "avg_slowdown_ath128": avg128,
            "avg_alerts_per_trefi_ath64": rate64,
            "avg_alerts_per_trefi_ath128": rate128,
            "paper_avg_slowdown_ath64": AVG_SLOWDOWN[64],
            "sweep_hash": spec.sweep_hash(),
            "wall_clock_s": result.wall_clock_s,
            "compute_time_s": result.compute_time_s,
            "cache_hits": result.cache_hits,
        },
        key="fig11",
    )

    # Shape assertions (see module docstring). REPRO_FAST keeps only
    # the hot-biased workload subset, so its average sits higher than
    # the full 21-workload figure.
    assert avg64 < (0.02 if FAST else 0.01)
    assert avg128 <= avg64  # ATH=128 is at least as quiet
    assert rate128 <= rate64
    assert avg128 < 0.001
    # Alert activity concentrates in the hot workloads.
    hot = {"roms", "parest", "xz", "lbm"}
    hot_rate = sum(table[64][n]["alerts_per_trefi"] for n in hot if n in table[64])
    quiet = {"tc", "x264", "wrf"}
    quiet_rate = sum(table[64][n]["alerts_per_trefi"] for n in quiet if n in table[64])
    assert hot_rate >= quiet_rate
