"""Figure 11: per-workload performance and ALERT rate for MOAT.

(a) Normalized performance at ATH=64 and ATH=128 (ETH = ATH/2): the
paper reports 0.28% average slowdown at ATH=64 and ~0% at ATH=128.
(b) ALERTs per tREFI per sub-channel: 0.023 average at ATH=64, ~0 at
ATH=128.

Absolute magnitudes depend on the temporal structure of the real SPEC/
GAP traces (see DESIGN.md); the reproduced properties are the ordering
of workloads, the near-zero cost at ATH=128, and the sub-1% scale.

Pulls from the cached ``sweep:fig11`` artifact via the figure registry
— the same grid ``repro sweep fig11`` and ``repro report run fig11``
execute — so the figure, the CLI, and the CI baseline gate all share
one code path and one result cache.
"""

from benchmarks.conftest import FAST, figure_text, record_figure, run_figure


def test_fig11_performance_and_alert_rate(benchmark, report, record_json):
    result = benchmark.pedantic(
        lambda: run_figure("fig11"), rounds=1, iterations=1
    )
    report(figure_text(result))
    record_figure(record_json, result, key="fig11")

    points = list(result.artifacts["sweep:fig11"]["points"].values())
    table = {
        ath: {p["workload"]: p["metrics"] for p in points if p["ath"] == ath}
        for ath in (64, 128)
    }
    workloads = sorted(table[64])
    assert workloads and sorted(table[128]) == workloads

    avg64 = sum(table[64][w]["slowdown"] for w in workloads) / len(workloads)
    avg128 = sum(table[128][w]["slowdown"] for w in workloads) / len(workloads)
    rate64 = sum(
        table[64][w]["alerts_per_trefi"] for w in workloads
    ) / len(workloads)
    rate128 = sum(
        table[128][w]["alerts_per_trefi"] for w in workloads
    ) / len(workloads)

    # Shape assertions (see module docstring). REPRO_FAST keeps only
    # the hot-biased workload subset, so its average sits higher than
    # the full 21-workload figure.
    assert avg64 < (0.02 if FAST else 0.01)
    assert avg128 <= avg64  # ATH=128 is at least as quiet
    assert rate128 <= rate64
    assert avg128 < 0.001
    # Alert activity concentrates in the hot workloads.
    hot = {"roms", "parest", "xz", "lbm"}
    hot_rate = sum(
        table[64][w]["alerts_per_trefi"] for w in hot if w in table[64]
    )
    quiet = {"tc", "x264", "wrf"}
    quiet_rate = sum(
        table[64][w]["alerts_per_trefi"] for w in quiet if w in table[64]
    )
    assert hot_rate >= quiet_rate
