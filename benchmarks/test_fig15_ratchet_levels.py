"""Figure 15: Safe T_RH under the Ratchet attack for ABO levels 1/2/4."""

from repro.analysis.ratchet_model import ratchet_sweep
from repro.report.paper_values import TABLE7_ATH_LEVEL
from repro.report.tables import format_table

ATH_SWEEP = [16, 32, 48, 64, 80, 96, 112, 128]


def test_fig15_levels(benchmark, report):
    sweep = benchmark.pedantic(
        lambda: ratchet_sweep(ath_values=ATH_SWEEP, levels=[1, 2, 4]),
        rounds=1,
        iterations=1,
    )
    rows = []
    for ath in ATH_SWEEP:
        paper = {
            level: TABLE7_ATH_LEVEL.get((ath, level), ("", ""))[1]
            for level in (1, 2, 4)
        }
        rows.append(
            (
                ath,
                sweep[1][ath],
                paper[1],
                sweep[2][ath],
                paper[2],
                sweep[4][ath],
                paper[4],
            )
        )
    report(
        format_table(
            ["ATH", "L1", "paper", "L2", "paper", "L4", "paper"],
            rows,
            title="Figure 15 - Safe T_RH under Ratchet per ABO level",
        )
    )
    # Level 1 tolerates the highest threshold at any ATH (fewer
    # inter-ALERT activations to exploit) — the paper's recommendation.
    for ath in ATH_SWEEP:
        assert sweep[1][ath] >= sweep[2][ath] >= sweep[4][ath]
    assert sweep[1][64] == 99
