"""Figure 15: Safe T_RH under the Ratchet attack for ABO levels 1/2/4.

Pulls from the cached ``model:fig15`` artifact via the figure registry
(the same safe-TRH grid that backs Figure 10 and Table 7's TRH column).
"""

from benchmarks.conftest import figure_text, run_figure
from repro.report.paper_values import TABLE7_SAFE_TRH
from repro.sweep.model_spec import SAFE_TRH_ATH_SWEEP


def test_fig15_levels(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("fig15"), rounds=1, iterations=1
    )
    report(figure_text(result))
    points = result.artifacts["model:fig15"]["points"].values()
    sweep = {}
    for point in points:
        params = point["params"]
        sweep.setdefault(params["level"], {})[params["ath"]] = point[
            "metrics"
        ]["safe_trh"]

    # Level 1 tolerates the highest threshold at any ATH (fewer
    # inter-ALERT activations to exploit) — the paper's recommendation.
    for ath in SAFE_TRH_ATH_SWEEP:
        assert sweep[1][ath] >= sweep[2][ath] >= sweep[4][ath]
    assert sweep[1][64] == 99
    # Every published Table 7 TRH cell is reproduced within one ACT.
    for (ath, level), paper in TABLE7_SAFE_TRH.items():
        assert abs(sweep[level][ath] - paper) <= 1
