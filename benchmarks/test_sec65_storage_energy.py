"""Section 6.5 / Appendix D: storage and energy overheads of MOAT."""

from benchmarks.conftest import run_one, sweep_profiles
from repro.analysis.energy import (
    activation_energy_overhead,
    moat_sram_bytes,
    moat_sram_bytes_per_chip,
)
from repro.mitigations.moat import MoatPolicy
from repro.report.paper_values import (
    MOAT_ACTIVATION_OVERHEAD_ATH64,
    MOAT_ENERGY_OVERHEAD_BOUND,
    MOAT_SRAM_BYTES_PER_BANK,
    MOAT_SRAM_BYTES_PER_CHIP,
)
from repro.report.tables import format_table


def test_sec65_storage(benchmark, report):
    values = benchmark.pedantic(
        lambda: {
            level: (
                moat_sram_bytes(level),
                moat_sram_bytes_per_chip(level),
                MoatPolicy(level=level).sram_bytes(),
            )
            for level in (1, 2, 4)
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            f"MOAT-L{level}",
            MOAT_SRAM_BYTES_PER_BANK[level],
            values[level][0],
            MOAT_SRAM_BYTES_PER_CHIP[level],
            values[level][1],
        )
        for level in (1, 2, 4)
    ]
    report(
        format_table(
            ["design", "paper B/bank", "measured", "paper B/chip", "measured"],
            rows,
            title="Section 6.5 / Appendix D - SRAM overhead",
        )
    )
    for level in (1, 2, 4):
        assert values[level][0] == MOAT_SRAM_BYTES_PER_BANK[level]
        assert values[level][2] == MOAT_SRAM_BYTES_PER_BANK[level]
        assert values[level][1] == MOAT_SRAM_BYTES_PER_CHIP[level]


def test_sec65_energy(benchmark, report, schedules):
    profiles = sweep_profiles()

    def measure():
        overheads = []
        for p in profiles:
            result = run_one(p, schedules, ath=64)
            overheads.append(result.activation_overhead)
        return sum(overheads) / len(overheads)

    overhead = benchmark.pedantic(measure, rounds=1, iterations=1)
    energy = activation_energy_overhead(1000, int(1000 * overhead))
    rows = [
        ("extra activations", f"{MOAT_ACTIVATION_OVERHEAD_ATH64:.1%}", f"{overhead:.2%}"),
        ("total DRAM energy bound", f"<{MOAT_ENERGY_OVERHEAD_BOUND:.1%}",
         f"{energy.total_energy_overhead:.3%}"),
    ]
    report(format_table(["quantity", "paper", "measured"], rows, title="Section 6.5 - Energy overhead (ATH=64)"))
    # Mitigation activations stay a small fraction of demand traffic,
    # and the derived energy impact stays under the paper's 0.5% bound.
    assert overhead < 0.10
    assert energy.total_energy_overhead < 0.02
