"""Section 6.5 / Appendix D: storage and energy overheads of MOAT.

Pulls from the cached ``model:sec65-storage`` (SRAM budget) and
``sweep:sec65`` (activation overhead at ATH=64) artifacts via the
figure registry.
"""

from benchmarks.conftest import figure_text, rows_by_label, run_figure
from repro.report.paper_values import (
    MOAT_SRAM_BYTES_PER_BANK,
    MOAT_SRAM_BYTES_PER_CHIP,
)


def test_sec65_storage(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("sec65"), rounds=1, iterations=1
    )
    report(figure_text(result))
    rows = rows_by_label(result)
    for level in (1, 2, 4):
        per_bank = rows[f"MOAT-L{level} SRAM (B/bank)"].measured
        per_chip = rows[f"MOAT-L{level} SRAM (B/chip)"].measured
        assert per_bank == MOAT_SRAM_BYTES_PER_BANK[level]
        assert per_chip == MOAT_SRAM_BYTES_PER_CHIP[level]


def test_sec65_energy(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure("sec65"), rounds=1, iterations=1
    )
    rows = rows_by_label(result)
    overhead = rows["activation overhead @ ATH=64"].measured
    energy = rows["total DRAM energy overhead"].measured
    report(
        f"Section 6.5 - energy: activation overhead {overhead:.2%}, "
        f"total energy overhead {energy:.3%}"
    )
    # Mitigation activations stay a small fraction of demand traffic,
    # and the derived energy impact stays under the paper's 0.5% bound
    # scale regime.
    assert overhead < 0.10
    assert energy < 0.02
