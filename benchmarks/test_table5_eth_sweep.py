"""Table 5: impact of ETH (at ATH=64) on mitigation count and slowdown.

Lower ETH means more rows are eligible for proactive mitigation (more
energy); higher ETH starves the proactive path and pushes work onto
ALERTs (more slowdown). ETH = ATH/2 = 32 is the paper's balance point.
"""

from benchmarks.conftest import run_one, sweep_profiles
from repro.report.paper_values import TABLE5_ETH
from repro.report.tables import format_table

ETH_VALUES = [0, 16, 32, 48]


def test_table5_eth_sweep(benchmark, report, schedules):
    profiles = sweep_profiles()

    def sweep():
        table = {}
        for eth in ETH_VALUES:
            results = [
                run_one(p, schedules, ath=64, eth=eth) for p in profiles
            ]
            mitigations = sum(
                r.mitigations_per_trefw_per_bank for r in results
            ) / len(results)
            slowdown = sum(r.slowdown for r in results) / len(results)
            table[eth] = (mitigations, slowdown)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (
            eth,
            TABLE5_ETH[eth][0],
            round(table[eth][0]),
            f"{TABLE5_ETH[eth][1] * 100:.2f}%",
            f"{table[eth][1] * 100:.2f}%",
        )
        for eth in ETH_VALUES
    ]
    report(
        format_table(
            ["ETH", "paper mit/tREFW", "measured", "paper slowdown", "measured"],
            rows,
            title="Table 5 - ETH sweep at ATH=64 (sweep subset; paper averages all 21)",
        )
    )
    # Shape assertions: mitigation volume decreases monotonically with
    # ETH, and ETH=0 does the most proactive work.
    mitigation_counts = [table[eth][0] for eth in ETH_VALUES]
    assert mitigation_counts == sorted(mitigation_counts, reverse=True)
    assert table[0][0] > table[48][0]
