"""Table 5: impact of ETH (at ATH=64) on mitigation count and slowdown.

Lower ETH means more rows are eligible for proactive mitigation (more
energy); higher ETH starves the proactive path and pushes work onto
ALERTs (more slowdown). ETH = ATH/2 = 32 is the paper's balance point.

Pulls from the cached ``sweep:table5`` artifact via the figure registry
— the same grid ``repro sweep table5`` executes, sharing its point
cache.
"""

from benchmarks.conftest import figure_text, record_figure, run_figure

ETH_VALUES = [0, 16, 32, 48]


def test_table5_eth_sweep(benchmark, report, record_json):
    result = benchmark.pedantic(
        lambda: run_figure("table5"), rounds=1, iterations=1
    )
    report(figure_text(result))
    record_figure(record_json, result, key="table5")

    points = list(result.artifacts["sweep:table5"]["points"].values())
    table = {}
    for eth in ETH_VALUES:
        metrics = [p["metrics"] for p in points if p["eth"] == eth]
        assert metrics, f"no points at ETH={eth}"
        table[eth] = sum(
            m["mitigations_per_trefw_per_bank"] for m in metrics
        ) / len(metrics)

    # Shape assertions: mitigation volume decreases monotonically with
    # ETH, and ETH=0 does the most proactive work.
    counts = [table[eth] for eth in ETH_VALUES]
    assert counts == sorted(counts, reverse=True)
    assert table[0] > table[48]
