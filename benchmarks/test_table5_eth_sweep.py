"""Table 5: impact of ETH (at ATH=64) on mitigation count and slowdown.

Lower ETH means more rows are eligible for proactive mitigation (more
energy); higher ETH starves the proactive path and pushes work onto
ALERTs (more slowdown). ETH = ATH/2 = 32 is the paper's balance point.

Runs on the ``repro.sweep`` parallel runner (the ``table5`` preset at
benchmark scale), sharing the point cache with ``repro sweep table5``.
"""

from benchmarks.conftest import N_TREFI, run_grid, sweep_profiles
from repro.report.paper_values import TABLE5_ETH
from repro.report.tables import format_table
from repro.sweep.spec import PRESETS

ETH_VALUES = [0, 16, 32, 48]


def test_table5_eth_sweep(benchmark, report, record_json):
    profiles = sweep_profiles()
    spec = PRESETS["table5"].with_overrides(
        n_trefi=N_TREFI, workloads=tuple(p.name for p in profiles)
    )
    assert sorted(spec.eth) == sorted(ETH_VALUES)

    result = benchmark.pedantic(lambda: run_grid(spec), rounds=1, iterations=1)

    table = {}
    for eth in ETH_VALUES:
        metrics = [r.metrics for r in result.results if r.eth == eth]
        assert len(metrics) == len(profiles)
        mitigations = sum(
            m["mitigations_per_trefw_per_bank"] for m in metrics
        ) / len(metrics)
        slowdown = sum(m["slowdown"] for m in metrics) / len(metrics)
        table[eth] = (mitigations, slowdown)

    rows = [
        (
            eth,
            TABLE5_ETH[eth][0],
            round(table[eth][0]),
            f"{TABLE5_ETH[eth][1] * 100:.2f}%",
            f"{table[eth][1] * 100:.2f}%",
        )
        for eth in ETH_VALUES
    ]
    report(
        format_table(
            ["ETH", "paper mit/tREFW", "measured", "paper slowdown", "measured"],
            rows,
            title="Table 5 - ETH sweep at ATH=64 (sweep subset; paper averages all 21)",
        )
    )
    record_json(
        {
            "mitigations_per_trefw_by_eth": {
                str(eth): table[eth][0] for eth in ETH_VALUES
            },
            "slowdown_by_eth": {str(eth): table[eth][1] for eth in ETH_VALUES},
            "sweep_hash": spec.sweep_hash(),
            "wall_clock_s": result.wall_clock_s,
            "compute_time_s": result.compute_time_s,
            "cache_hits": result.cache_hits,
        },
        key="table5",
    )
    # Shape assertions: mitigation volume decreases monotonically with
    # ETH, and ETH=0 does the most proactive work.
    mitigation_counts = [table[eth][0] for eth in ETH_VALUES]
    assert mitigation_counts == sorted(mitigation_counts, reverse=True)
    assert table[0][0] > table[48][0]
